"""Pluggable snapshot storage for CSR graph snapshots.

A :class:`SnapshotStore` decides where the six canonical arrays of a
:class:`~repro.graph.csr.CSRGraph` snapshot live:

- :class:`HeapStore` -- plain heap ``ndarray``s, today's behaviour and
  the default.  ``publish`` is the identity; nothing touches disk.
- :class:`MmapStore` -- arrays persisted to a spool directory in a
  versioned, CRC-guarded binary layout and reopened as read-only
  ``np.memmap`` views.  The engines, ``PartitionedCSR`` and the
  dataflow layer run unmodified over the views because the
  :class:`CSRGraph` slice API is unchanged; only the pages an engine
  actually touches are resident.

On-disk layout of an :class:`MmapStore` root::

    manifest.json                      atomically-replaced JSON index
    <label>-g000000-out_offsets.seg    one segment file per array per
    <label>-g000000-out_targets.seg    snapshot generation
    ...

Each ``.seg`` file is a 64-byte header (magic+version, dtype code,
element count, CRC32 of the payload) followed by the raw little-endian
array payload.  Segment files are immutable once published: a new
snapshot generation writes fresh files (clean vertex ranges are block
copied file-to-file in bounded chunks; dirty ranges are rebuilt in
heap), renames them into place, and then atomically replaces the
manifest.  A crash between those steps leaves at worst a torn temp
file and an orphaned segment -- the previous manifest always stays
readable, which is what the ``storage.segment_write`` failpoint and
the crash fuzzer's storage sweep pin down.

Generations no longer referenced by a live graph, the manifest's
``current`` pointer, or a checkpoint pin are *tombstoned*;
:meth:`MmapStore.compact` (run opportunistically after each release)
deletes their files.  POSIX keeps open ``np.memmap`` views valid even
after the backing file is unlinked, so compaction never races a
reader.

Store selection is wired through ``REPRO_SNAPSHOT_STORE=heap`` or
``mmap[:dir]`` (see :func:`store_from_env`) plus ``--snapshot-store``
on the ``run`` / ``serve`` / ``experiment`` CLI entry points.
"""

from __future__ import annotations

import json
import mmap as _mmap_module
import os
import struct
import tempfile
import zlib
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "ARRAY_NAMES",
    "HeapStore",
    "MmapStore",
    "SnapshotStore",
    "StoreError",
    "open_snapshot_reference",
    "store_from_env",
    "store_from_spec",
    "verify_segment_blob",
    "verify_segment_file",
]

#: The six canonical arrays of a CSR+CSC snapshot, in manifest order.
ARRAY_NAMES = (
    "out_offsets",
    "out_targets",
    "out_weights",
    "in_offsets",
    "in_sources",
    "in_weights",
)

ARRAY_DTYPES = {
    "out_offsets": "<i8",
    "out_targets": "<i8",
    "out_weights": "<f8",
    "in_offsets": "<i8",
    "in_sources": "<i8",
    "in_weights": "<f8",
}

_MAGIC = b"RSSEG001"
_HEADER_SIZE = 64
_HEADER = struct.Struct("<8s8sQI")  # magic, dtype code, count, crc32
_MANIFEST_VERSION = 1
_MANIFEST_NAME = "manifest.json"

#: Copy granularity (elements) for file-to-file block copies of clean
#: vertex ranges: 2 MiB of int64/float64 per chunk, so a clean-range
#: copy never holds more than one chunk in heap.
_COPY_CHUNK = 1 << 18

#: Upper bound (edges) on the heap working set of one dirty vertex
#: range during :meth:`MmapStore.adjust`.  Segment boundaries are
#: chosen by edge budget, not vertex count, so a power-law hub cannot
#: blow the bound past a single row.
_SEGMENT_EDGE_BUDGET = 1 << 20


class StoreError(ValueError):
    """A snapshot store's on-disk state failed validation."""


# ----------------------------------------------------------------------
# Base interface
# ----------------------------------------------------------------------
class SnapshotStore:
    """Where the canonical arrays of CSR snapshots live."""

    kind: str = "abstract"

    def writer(self) -> "_SnapshotWriter":
        """An incremental writer: append canonical-array chunks in
        order, then ``commit(num_vertices)`` to obtain the graph.
        Streaming producers (the xl RMAT generator) use this so the
        full edge list never exists in heap at once."""
        raise NotImplementedError

    def publish(self, graph: CSRGraph) -> CSRGraph:
        """Persist ``graph``'s arrays into the store and return the
        store-backed equivalent (identity for :class:`HeapStore`)."""
        raise NotImplementedError

    def release(self, graph: CSRGraph) -> None:
        """Drop the live reference a graph holds on its snapshot."""

    def describe(self) -> str:
        return self.kind


class HeapStore(SnapshotStore):
    """Today's behaviour: snapshots are plain heap arrays."""

    kind = "heap"

    def writer(self) -> "_HeapWriter":
        return _HeapWriter()

    def publish(self, graph: CSRGraph) -> CSRGraph:
        return graph


class _SnapshotWriter:
    def append(self, name: str, chunk: np.ndarray) -> None:
        raise NotImplementedError

    def commit(self, num_vertices: int) -> CSRGraph:
        raise NotImplementedError

    def abort(self) -> None:
        """Discard partial output (no-op after commit)."""


class _HeapWriter(_SnapshotWriter):
    """Accumulate chunks in heap and assemble plain arrays."""

    def __init__(self) -> None:
        self._chunks: Dict[str, List[np.ndarray]] = {
            name: [] for name in ARRAY_NAMES
        }

    def append(self, name: str, chunk: np.ndarray) -> None:
        dtype = np.dtype(ARRAY_DTYPES[name])
        self._chunks[name].append(np.ascontiguousarray(chunk, dtype=dtype))

    def commit(self, num_vertices: int) -> CSRGraph:
        arrays = {}
        for name in ARRAY_NAMES:
            chunks = self._chunks[name]
            if len(chunks) == 1:
                arrays[name] = chunks[0]
            else:
                arrays[name] = (
                    np.concatenate(chunks) if chunks
                    else np.empty(0, dtype=np.dtype(ARRAY_DTYPES[name]))
                )
        self._chunks = {name: [] for name in ARRAY_NAMES}
        return CSRGraph.from_canonical(num_vertices, **arrays)


# ----------------------------------------------------------------------
# Segment files
# ----------------------------------------------------------------------
def _pack_header(dtype: str, count: int, crc: int) -> bytes:
    header = _HEADER.pack(_MAGIC, dtype.encode("ascii").ljust(8, b"\0"),
                          count, crc & 0xFFFFFFFF)
    return header.ljust(_HEADER_SIZE, b"\0")


def _read_header(path: str) -> Tuple[str, int, int]:
    """Return ``(dtype, count, crc32)`` after structural validation."""
    try:
        with open(path, "rb") as stream:
            raw = stream.read(_HEADER_SIZE)
    except OSError as exc:
        raise StoreError(f"unreadable segment {path}: {exc}") from exc
    if len(raw) < _HEADER_SIZE:
        raise StoreError(f"segment {path} truncated before header end")
    magic, dtype_raw, count, crc = _HEADER.unpack_from(raw)
    if magic != _MAGIC:
        raise StoreError(f"segment {path} has bad magic {magic!r}")
    dtype = dtype_raw.rstrip(b"\0").decode("ascii")
    if dtype not in ("<i8", "<f8"):
        raise StoreError(f"segment {path} has unknown dtype {dtype!r}")
    expected = _HEADER_SIZE + count * np.dtype(dtype).itemsize
    actual = os.path.getsize(path)
    if actual != expected:
        raise StoreError(
            f"segment {path}: size {actual} != expected {expected}"
        )
    return dtype, int(count), int(crc)


def verify_segment_file(path: str) -> Tuple[str, int, int]:
    """Header + full payload-CRC check of one ``.seg`` file.

    Returns ``(dtype, count, crc32)`` on success; raises
    :class:`StoreError` on structural damage or payload bit-rot.  This
    is the primitive the integrity scrubber and the replica receive
    path share with :meth:`MmapStore.verify`.
    """
    dtype, count, crc = _read_header(path)
    actual = 0
    with open(path, "rb") as stream:
        stream.seek(_HEADER_SIZE)
        while True:
            block = stream.read(1 << 20)
            if not block:
                break
            actual = zlib.crc32(block, actual)
    if actual & 0xFFFFFFFF != crc:
        raise StoreError(f"segment {path} payload CRC mismatch")
    return dtype, count, crc


def verify_segment_blob(blob: bytes, context: str = "<blob>") -> None:
    """Like :func:`verify_segment_file` for an in-memory segment image
    (a shipped store-segment payload that has not touched disk yet)."""
    if len(blob) < _HEADER_SIZE:
        raise StoreError(f"segment {context} truncated before header end")
    magic, dtype_raw, count, crc = _HEADER.unpack_from(blob)
    if magic != _MAGIC:
        raise StoreError(f"segment {context} has bad magic {magic!r}")
    dtype = dtype_raw.rstrip(b"\0").decode("ascii", errors="replace")
    if dtype not in ("<i8", "<f8"):
        raise StoreError(f"segment {context} has unknown dtype {dtype!r}")
    expected = _HEADER_SIZE + int(count) * np.dtype(dtype).itemsize
    if len(blob) != expected:
        raise StoreError(
            f"segment {context}: size {len(blob)} != expected {expected}"
        )
    if zlib.crc32(blob[_HEADER_SIZE:]) & 0xFFFFFFFF != crc:
        raise StoreError(f"segment {context} payload CRC mismatch")


def _evict_pages(*arrays) -> None:
    """Drop the resident pages behind memmap-backed arrays.

    ``MADV_DONTNEED`` on a read-only file mapping discards clean pages;
    the data refetches from the segment file on the next touch, so this
    only trades latency for RSS.  :meth:`MmapStore.adjust` evicts each
    old-generation direction after block-copying it forward -- without
    this, the copy drags the whole previous generation resident and
    the out-of-core tier's peak-RSS advantage evaporates.  No-op for
    heap arrays, sliced views, and platforms without ``madvise``.
    """
    for array in arrays:
        mapping = getattr(array, "_mmap", None)
        if mapping is None or not hasattr(mapping, "madvise"):
            continue
        try:
            mapping.madvise(_mmap_module.MADV_DONTNEED)
        except (AttributeError, ValueError, OSError):
            pass


class _SegmentFile:
    """One array's segment file under incremental construction."""

    def __init__(self, root: str, name: str) -> None:
        self.name = name
        self.dtype = np.dtype(ARRAY_DTYPES[name])
        fd, self.tmp_path = tempfile.mkstemp(
            prefix=f".{name}-", suffix=".tmp", dir=root
        )
        self._stream = os.fdopen(fd, "wb")
        self._stream.write(b"\0" * _HEADER_SIZE)
        self.count = 0
        self.crc = 0

    def append(self, chunk: np.ndarray) -> None:
        chunk = np.ascontiguousarray(chunk, dtype=self.dtype)
        data = chunk.tobytes()
        self.crc = zlib.crc32(data, self.crc)
        self.count += int(chunk.size)
        self._stream.write(data)

    def finalize(self, final_path: str) -> None:
        # Imported here, not at module top: the graph layer sits below
        # repro.testing in the import graph (testing's oracle pulls in
        # every engine, which pulls this package back in).
        from repro.testing import faults

        # The failpoint sits after the payload but before the header
        # backpatch + rename: an injected crash here leaves a torn
        # temp file (payload without a valid header, never renamed),
        # which is exactly the artifact a real mid-write kill leaves.
        # A corrupt plan flips one payload byte *after* the streaming
        # CRC was computed -- planted bit-rot the header cannot see,
        # which only a payload re-read (scrub/verify) can detect.
        if faults.hit_corruptible("storage.segment_write") and self.count:
            self._stream.flush()
            offset = _HEADER_SIZE + (self.count * self.dtype.itemsize) // 2
            fd = self._stream.fileno()
            byte = os.pread(fd, 1, offset)
            os.pwrite(fd, bytes([byte[0] ^ 0x01]), offset)
        self._stream.flush()
        self._stream.seek(0)
        self._stream.write(_pack_header(str(self.dtype.str), self.count,
                                        self.crc))
        self._stream.flush()
        os.fsync(self._stream.fileno())
        self._stream.close()
        os.replace(self.tmp_path, final_path)

    def discard(self) -> None:
        try:
            self._stream.close()
        except OSError:
            pass
        try:
            os.unlink(self.tmp_path)
        except OSError:
            pass


class _MmapWriter(_SnapshotWriter):
    """Write one snapshot generation's segment files, then publish."""

    def __init__(self, store: "MmapStore") -> None:
        self._store = store
        self._segments = {
            name: _SegmentFile(store.root, name) for name in ARRAY_NAMES
        }
        self._done = False

    def append(self, name: str, chunk: np.ndarray) -> None:
        self._segments[name].append(chunk)

    def append_raw(self, name: str, other: np.ndarray,
                   start: int, stop: int) -> None:
        """Block-copy ``other[start:stop]`` (typically an old
        generation's memmap) in bounded chunks."""
        segment = self._segments[name]
        for lo in range(start, stop, _COPY_CHUNK):
            hi = min(lo + _COPY_CHUNK, stop)
            segment.append(other[lo:hi])

    def commit(self, num_vertices: int) -> CSRGraph:
        if self._done:
            raise RuntimeError("writer already committed")
        edge_count = self._segments["out_targets"].count
        for name in ("out_weights", "in_sources", "in_weights"):
            if self._segments[name].count != edge_count:
                raise StoreError(
                    f"array {name} has {self._segments[name].count} "
                    f"elements, expected {edge_count}"
                )
        try:
            graph = self._store._publish_generation(
                num_vertices, self._segments
            )
        except Exception:
            # Ordinary failures tidy the temp files; an InjectedCrash
            # (BaseException) deliberately does not -- a killed process
            # leaves its torn temps behind, and the storage crash
            # sweep asserts the store survives them.
            self.abort()
            raise
        self._done = True
        return graph

    def abort(self) -> None:
        if self._done:
            return
        for segment in self._segments.values():
            segment.discard()
        self._done = True


# ----------------------------------------------------------------------
# MmapStore
# ----------------------------------------------------------------------
class MmapStore(SnapshotStore):
    """Snapshots spooled to disk and reopened as ``np.memmap`` views.

    Parameters
    ----------
    root:
        Spool directory (created if missing).  One store per
        directory; the manifest and all segment files live here.
    label:
        Prefix for snapshot ids and file names minted by *this* store.
        Replicas use their own label so snapshots adopted from a
        writer's checkpoint manifest never collide with the replica's
        own generations in the same root.
    """

    kind = "mmap"

    def __init__(self, root: str, label: str = "snap") -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        if not label or any(ch in label for ch in "/\\ \t\n"):
            raise ValueError(f"invalid store label {label!r}")
        self.label = label
        self._live: Dict[str, int] = {}
        self._manifest = self._read_manifest()

    # -- manifest ------------------------------------------------------
    @property
    def _manifest_path(self) -> str:
        return os.path.join(self.root, _MANIFEST_NAME)

    def _read_manifest(self) -> dict:
        if not os.path.exists(self._manifest_path):
            return {
                "version": _MANIFEST_VERSION,
                "generation": 0,
                "current": None,
                "snapshots": {},
                "pins": {},
            }
        try:
            with open(self._manifest_path, "r", encoding="utf-8") as stream:
                manifest = json.load(stream)
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(
                f"unreadable store manifest {self._manifest_path}: {exc}"
            ) from exc
        if manifest.get("version") != _MANIFEST_VERSION:
            raise StoreError(
                f"store manifest version {manifest.get('version')!r} "
                f"!= {_MANIFEST_VERSION}"
            )
        return manifest

    def _write_manifest(self) -> None:
        fd, tmp = tempfile.mkstemp(prefix=".manifest-", suffix=".tmp",
                                   dir=self.root)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as stream:
                json.dump(self._manifest, stream, indent=1, sort_keys=True)
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(tmp, self._manifest_path)
        except Exception:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- snapshot ids --------------------------------------------------
    def _mint_snapshot_id(self) -> str:
        generation = int(self._manifest["generation"])
        self._manifest["generation"] = generation + 1
        return f"{self.label}-g{generation:06d}"

    def snapshot_ids(self) -> List[str]:
        return sorted(self._manifest["snapshots"])

    @property
    def current_snapshot(self) -> Optional[str]:
        return self._manifest.get("current")

    # -- publish / open ------------------------------------------------
    def writer(self) -> _MmapWriter:
        return _MmapWriter(self)

    def publish(self, graph: CSRGraph) -> CSRGraph:
        if getattr(graph, "store", None) is self:
            return graph
        writer = self.writer()
        for name in ARRAY_NAMES:
            writer.append_raw(name, getattr(graph, name),
                              0, getattr(graph, name).size)
        return writer.commit(graph.num_vertices)

    def _publish_generation(self, num_vertices: int,
                            segments: Dict[str, _SegmentFile]) -> CSRGraph:
        snapshot_id = self._mint_snapshot_id()
        entry: dict = {"num_vertices": int(num_vertices), "arrays": {}}
        for name in ARRAY_NAMES:
            segment = segments[name]
            file_name = f"{snapshot_id}-{name}.seg"
            segment.finalize(os.path.join(self.root, file_name))
            entry["arrays"][name] = {
                "file": file_name,
                "dtype": str(segment.dtype.str),
                "count": segment.count,
                "crc32": segment.crc & 0xFFFFFFFF,
            }
        self._manifest["snapshots"][snapshot_id] = entry
        self._manifest["current"] = snapshot_id
        self._write_manifest()
        return self.open_snapshot(snapshot_id)

    def _open_array(self, meta: dict, verify: bool = False) -> np.ndarray:
        path = os.path.join(self.root, meta["file"])
        dtype, count, crc = _read_header(path)
        if dtype != meta["dtype"] or count != int(meta["count"]):
            raise StoreError(
                f"segment {path} header disagrees with manifest "
                f"({dtype},{count}) != ({meta['dtype']},{meta['count']})"
            )
        if crc != int(meta["crc32"]):
            raise StoreError(f"segment {path} CRC header/manifest mismatch")
        if verify:
            actual = 0
            with open(path, "rb") as stream:
                stream.seek(_HEADER_SIZE)
                while True:
                    block = stream.read(1 << 20)
                    if not block:
                        break
                    actual = zlib.crc32(block, actual)
            if actual & 0xFFFFFFFF != crc:
                raise StoreError(f"segment {path} payload CRC mismatch")
        if count == 0:
            return np.empty(0, dtype=np.dtype(dtype))
        return np.memmap(path, dtype=np.dtype(dtype), mode="r",
                         offset=_HEADER_SIZE, shape=(count,))

    def open_snapshot(self, snapshot_id: Optional[str] = None,
                      verify: bool = False) -> CSRGraph:
        """Open a snapshot (default: current) as a store-backed graph."""
        snapshot_id = snapshot_id or self.current_snapshot
        if snapshot_id is None:
            raise StoreError(f"store {self.root} holds no snapshots")
        try:
            entry = self._manifest["snapshots"][snapshot_id]
        except KeyError:
            raise StoreError(
                f"unknown snapshot {snapshot_id!r} in store {self.root}"
            ) from None
        arrays = {
            name: self._open_array(entry["arrays"][name], verify=verify)
            for name in ARRAY_NAMES
        }
        graph = CSRGraph.from_canonical(
            int(entry["num_vertices"]), store=self,
            snapshot_id=snapshot_id, **arrays,
        )
        self._live[snapshot_id] = self._live.get(snapshot_id, 0) + 1
        return graph

    def verify(self, snapshot_id: Optional[str] = None) -> None:
        """Full payload-CRC verification of one snapshot (default:
        current).  Raises :class:`StoreError` on any mismatch."""
        snapshot_id = snapshot_id or self.current_snapshot
        if snapshot_id is None:
            raise StoreError(f"store {self.root} holds no snapshots")
        entry = self._manifest["snapshots"][snapshot_id]
        for name in ARRAY_NAMES:
            self._open_array(entry["arrays"][name], verify=True)

    # -- reference counting / pins / compaction ------------------------
    def release(self, graph: CSRGraph) -> None:
        snapshot_id = getattr(graph, "snapshot_id", None)
        if snapshot_id is None:
            return
        count = self._live.get(snapshot_id, 0)
        if count <= 1:
            self._live.pop(snapshot_id, None)
        else:
            self._live[snapshot_id] = count - 1
        self.compact()

    def pin(self, snapshot_id: str, owner: str) -> None:
        """Keep ``snapshot_id``'s files for as long as the file at
        ``owner`` (a checkpoint path) exists; self-expiring, so
        checkpoint rotation needs no store hook."""
        owners = self._manifest["pins"].setdefault(snapshot_id, [])
        owner = os.path.abspath(owner)
        if owner not in owners:
            owners.append(owner)
            self._write_manifest()

    def _retained(self) -> set:
        keep = set(self._live)
        if self.current_snapshot is not None:
            keep.add(self.current_snapshot)
        for snapshot_id, owners in self._manifest["pins"].items():
            if any(os.path.exists(owner) for owner in owners):
                keep.add(snapshot_id)
        return keep

    def compact(self) -> List[str]:
        """Delete tombstoned generations and stray temp files.

        A generation is tombstoned when no live graph references it,
        it is not the manifest's ``current``, and no pin with a
        still-existing owner file protects it.  Returns the deleted
        snapshot ids.
        """
        keep = self._retained()
        doomed = [sid for sid in self._manifest["snapshots"]
                  if sid not in keep]
        doomed_files = []
        if doomed:
            for snapshot_id in doomed:
                entry = self._manifest["snapshots"].pop(snapshot_id)
                self._manifest["pins"].pop(snapshot_id, None)
                doomed_files.extend(meta["file"]
                                    for meta in entry["arrays"].values())
            stale_pins = [sid for sid in self._manifest["pins"]
                          if sid not in self._manifest["snapshots"]]
            for snapshot_id in stale_pins:
                del self._manifest["pins"][snapshot_id]
            self._write_manifest()
        for name in doomed_files:
            try:
                os.unlink(os.path.join(self.root, name))
            except OSError:
                pass
        referenced = set()
        for entry in self._manifest["snapshots"].values():
            for meta in entry["arrays"].values():
                referenced.add(meta["file"])
        # Sweep only files *this* store minted: foreign-label segments
        # may be mid-bootstrap shipments whose adopting checkpoint has
        # not arrived yet, so they are never reaped by name.
        own_prefix = f"{self.label}-g"
        for name in os.listdir(self.root):
            path = os.path.join(self.root, name)
            if name.endswith(".tmp"):
                try:
                    os.unlink(path)
                except OSError:
                    pass
            elif (name.endswith(".seg") and name.startswith(own_prefix)
                  and name not in referenced):
                try:
                    os.unlink(path)
                except OSError:
                    pass
        return doomed

    # -- checkpoint manifest references --------------------------------
    def manifest_entry(self, snapshot_id: str) -> dict:
        """A self-contained JSON reference for checkpoints: enough to
        reopen the snapshot from this root (or a replica's copy)."""
        entry = self._manifest["snapshots"][snapshot_id]
        return {
            "kind": self.kind,
            "root": self.root,
            "label": self.label,
            "snapshot": snapshot_id,
            "num_vertices": int(entry["num_vertices"]),
            "arrays": {name: dict(meta)
                       for name, meta in entry["arrays"].items()},
        }

    def adopt_snapshot(self, reference: dict) -> str:
        """Register a snapshot described by a checkpoint manifest
        reference whose segment files already sit in this root (e.g.
        shipped there by replication).  Idempotent."""
        snapshot_id = reference["snapshot"]
        if snapshot_id in self._manifest["snapshots"]:
            return snapshot_id
        entry = {
            "num_vertices": int(reference["num_vertices"]),
            "arrays": {name: dict(meta)
                       for name, meta in reference["arrays"].items()},
        }
        for name in ARRAY_NAMES:
            if name not in entry["arrays"]:
                raise StoreError(
                    f"manifest reference missing array {name!r}"
                )
            # Header check up front: adopting a half-shipped snapshot
            # must fail loudly, not at first page fault.
            self._open_array(entry["arrays"][name])
        self._manifest["snapshots"][snapshot_id] = entry
        if self._manifest["current"] is None:
            self._manifest["current"] = snapshot_id
        self._write_manifest()
        return snapshot_id

    def segment_files(self, snapshot_id: str) -> List[str]:
        """File names (relative to root) backing one snapshot."""
        entry = self._manifest["snapshots"][snapshot_id]
        return [entry["arrays"][name]["file"] for name in ARRAY_NAMES]

    def describe(self) -> str:
        return f"mmap:{self.root}"

    # ------------------------------------------------------------------
    # Segment-wise structure adjustment
    # ------------------------------------------------------------------
    def adjust(
        self,
        old: CSRGraph,
        num_vertices: int,
        add_src: np.ndarray,
        add_dst: np.ndarray,
        add_weight: np.ndarray,
        del_src: np.ndarray,
        del_dst: np.ndarray,
    ) -> CSRGraph:
        """Build the post-batch snapshot without materializing the
        full edge set in heap.

        Vertex ranges untouched by the batch are block-copied from the
        old generation's files; dirty ranges (bounded by an edge
        budget) are merged in heap.  The result is bit-for-bit
        identical to the heap rebuild path: stable ordering puts
        surviving old edges before same-key additions, exactly like
        the stable lexsort in the :class:`CSRGraph` constructor.
        """
        writer = self.writer()
        try:
            self._adjust_direction(
                writer, old, num_vertices,
                offsets=old.out_offsets, others=old.out_targets,
                weights=old.out_weights,
                add_key=add_src, add_other=add_dst, add_weight=add_weight,
                del_key=del_src, del_other=del_dst,
                names=("out_offsets", "out_targets", "out_weights"),
            )
            _evict_pages(old.out_targets, old.out_weights)
            self._adjust_direction(
                writer, old, num_vertices,
                offsets=old.in_offsets, others=old.in_sources,
                weights=old.in_weights,
                add_key=add_dst, add_other=add_src, add_weight=add_weight,
                del_key=del_dst, del_other=del_src,
                names=("in_offsets", "in_sources", "in_weights"),
            )
            _evict_pages(old.in_sources, old.in_weights)
        except Exception:
            writer.abort()
            raise
        return writer.commit(num_vertices)

    def _adjust_direction(
        self, writer: _MmapWriter, old: CSRGraph, num_vertices: int,
        offsets: np.ndarray, others: np.ndarray, weights: np.ndarray,
        add_key: np.ndarray, add_other: np.ndarray,
        add_weight: np.ndarray,
        del_key: np.ndarray, del_other: np.ndarray,
        names: Tuple[str, str, str],
    ) -> None:
        offsets_name, others_name, weights_name = names
        old_v = old.num_vertices
        old_degrees = np.zeros(num_vertices, dtype=np.int64)
        old_degrees[:old_v] = np.diff(offsets)

        add_counts = np.bincount(add_key, minlength=num_vertices) \
            if add_key.size else np.zeros(num_vertices, dtype=np.int64)
        del_counts = np.bincount(del_key, minlength=num_vertices) \
            if del_key.size else np.zeros(num_vertices, dtype=np.int64)
        new_degrees = old_degrees + add_counts - del_counts
        new_offsets = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(new_degrees, out=new_offsets[1:])
        writer.append(offsets_name, new_offsets)

        # Deletions resolved to slots in this direction's edge arrays
        # (row-wise binary search, no O(E) key materialization).
        del_slots = _row_positions(offsets, others, del_key, del_other)
        del_slots.sort()

        # Additions in this direction's key order, stable so
        # duplicate pairs keep batch order (bit-for-bit contract).
        if add_key.size:
            order = np.lexsort((add_other, add_key))
            add_key = add_key[order]
            add_other = add_other[order]
            add_weight = add_weight[order]

        dirty = np.zeros(num_vertices, dtype=bool)
        if add_key.size:
            dirty[add_key] = True
        if del_key.size:
            dirty[del_key] = True

        start = 0
        while start < num_vertices:
            stop = self._segment_stop(offsets, old_v, num_vertices, start)
            if not dirty[start:stop].any():
                lo = int(offsets[min(start, old_v)])
                hi = int(offsets[min(stop, old_v)])
                writer.append_raw(others_name, others, lo, hi)
                writer.append_raw(weights_name, weights, lo, hi)
            else:
                seg_other, seg_weight = self._merge_segment(
                    start, stop, old_v, offsets, others, weights,
                    old_degrees, del_slots,
                    add_key, add_other, add_weight,
                )
                writer.append(others_name, seg_other)
                writer.append(weights_name, seg_weight)
            start = stop

    @staticmethod
    def _segment_stop(offsets: np.ndarray, old_v: int,
                      num_vertices: int, start: int) -> int:
        """Largest ``stop`` whose old edge span fits the budget (always
        advancing by at least one vertex)."""
        if start >= old_v:
            return num_vertices
        budget_end = int(offsets[start]) + _SEGMENT_EDGE_BUDGET
        stop = int(np.searchsorted(offsets, budget_end, side="right")) - 1
        stop = max(stop, start + 1)
        if stop >= old_v:
            return num_vertices
        return stop

    @staticmethod
    def _merge_segment(
        start: int, stop: int, old_v: int,
        offsets: np.ndarray, others: np.ndarray, weights: np.ndarray,
        old_degrees: np.ndarray, del_slots: np.ndarray,
        add_key: np.ndarray, add_other: np.ndarray,
        add_weight: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        read_stop = min(stop, old_v)
        lo = int(offsets[min(start, old_v)])
        hi = int(offsets[read_stop])
        seg_other = np.asarray(others[lo:hi])
        seg_weight = np.asarray(weights[lo:hi])
        seg_key = np.repeat(
            np.arange(start, read_stop, dtype=np.int64),
            old_degrees[start:read_stop],
        )
        if del_slots.size:
            first = int(np.searchsorted(del_slots, lo))
            last = int(np.searchsorted(del_slots, hi))
            if last > first:
                keep = np.ones(hi - lo, dtype=bool)
                keep[del_slots[first:last] - lo] = False
                seg_key = seg_key[keep]
                seg_other = seg_other[keep]
                seg_weight = seg_weight[keep]
        if add_key.size:
            first = int(np.searchsorted(add_key, start))
            last = int(np.searchsorted(add_key, stop))
        else:
            first = last = 0
        if last > first:
            seg_key = np.concatenate([seg_key, add_key[first:last]])
            seg_other = np.concatenate([seg_other, add_other[first:last]])
            seg_weight = np.concatenate([seg_weight,
                                         add_weight[first:last]])
            order = np.lexsort((seg_other, seg_key))
            seg_other = seg_other[order]
            seg_weight = seg_weight[order]
        return seg_other, seg_weight


def _row_positions(offsets: np.ndarray, others: np.ndarray,
                   keys: np.ndarray, other_values: np.ndarray) -> np.ndarray:
    """Edge-array slot of each (key, other) pair via per-row binary
    search; pairs must be present (callers resolve absence first)."""
    positions = np.empty(keys.size, dtype=np.int64)
    for index in range(keys.size):
        lo = int(offsets[keys[index]])
        hi = int(offsets[keys[index] + 1])
        row = others[lo:hi]
        slot = int(np.searchsorted(row, other_values[index]))
        if slot >= row.size or row[slot] != other_values[index]:
            raise StoreError(
                f"edge ({keys[index]}, {other_values[index]}) vanished "
                "between resolution and adjustment"
            )
        positions[index] = lo + slot
    return positions


# ----------------------------------------------------------------------
# Checkpoint manifest references
# ----------------------------------------------------------------------
def open_snapshot_reference(reference: dict,
                            store_root: Optional[str] = None,
                            label: Optional[str] = None) -> CSRGraph:
    """Reopen the snapshot a checkpoint's manifest reference names.

    ``store_root`` overrides the recorded root (a replica passes its
    own spool, where the writer's segment files were shipped); the
    snapshot is adopted into that root's manifest if absent so later
    structure adjustments and pins work locally.
    """
    if reference.get("kind") != "mmap":
        raise StoreError(
            f"unsupported store kind {reference.get('kind')!r}"
        )
    root = store_root or reference["root"]
    store = MmapStore(root, label=label or reference.get("label", "snap"))
    snapshot_id = store.adopt_snapshot(reference)
    return store.open_snapshot(snapshot_id)


# ----------------------------------------------------------------------
# Selection
# ----------------------------------------------------------------------
ENV_SNAPSHOT_STORE = "REPRO_SNAPSHOT_STORE"


def store_from_spec(spec: Optional[str],
                    default_root: Optional[str] = None) -> SnapshotStore:
    """Build a store from ``heap`` or ``mmap[:dir]``.

    ``mmap`` without a directory spools under ``default_root`` when
    given, else a fresh temporary directory.
    """
    spec = (spec or "heap").strip()
    kind, _, rest = spec.partition(":")
    if kind == "heap":
        if rest:
            raise ValueError(f"heap store takes no directory: {spec!r}")
        return HeapStore()
    if kind == "mmap":
        root = rest or default_root or tempfile.mkdtemp(
            prefix="repro-store-"
        )
        return MmapStore(root)
    raise ValueError(
        f"unknown snapshot store {spec!r} (choose heap or mmap[:dir])"
    )


def store_from_env(default: str = "heap",
                   default_root: Optional[str] = None) -> SnapshotStore:
    """Store selected by ``REPRO_SNAPSHOT_STORE`` (see module doc)."""
    return store_from_spec(os.environ.get(ENV_SNAPSHOT_STORE, default),
                           default_root=default_root)
