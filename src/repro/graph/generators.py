"""Synthetic graph generators.

The paper evaluates on six real-world web/social graphs (Wiki, UKDomain,
Twitter, TwitterMPI, Friendster, Yahoo; 0.4B-6.6B edges).  Those datasets
are unavailable offline and far beyond pure-Python scale, so we generate
RMAT graphs -- the standard synthetic stand-in for power-law web/social
structure -- with the same *relative* size ordering.  GraphBolt's benefits
stem from degree skew (value stabilisation, Figure 4) and sparsity
(locality of mutation impact), both of which RMAT reproduces.

All generators are deterministic given a seed.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Dict, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "rmat",
    "rmat_streamed",
    "rmat_xl",
    "erdos_renyi",
    "preferential_attachment",
    "grid_graph",
    "star_graph",
    "cycle_graph",
    "complete_graph",
    "bipartite_graph",
    "paper_graph",
    "PAPER_GRAPH_SCALES",
]


def rmat(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    weighted: bool = False,
) -> CSRGraph:
    """Generate an RMAT graph with ``2**scale`` vertices.

    Uses the recursive quadrant-splitting construction of Chakrabarti et
    al. with the Graph500 default partition (a, b, c, d) =
    (0.57, 0.19, 0.19, 0.05).  Duplicate edges and self-loops are removed,
    so the final edge count is slightly below ``edge_factor * 2**scale``.
    """
    if not 0 < a + b + c < 1:
        raise ValueError("a + b + c must be in (0, 1)")
    rng = np.random.default_rng(seed)
    num_vertices = 1 << scale
    num_edges = edge_factor * num_vertices
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    ab = a + b
    abc = a + b + c
    for level in range(scale):
        rand = rng.random(num_edges)
        src_bit = (rand >= ab).astype(np.int64)
        dst_bit = (
            ((rand >= a) & (rand < ab)) | (rand >= abc)
        ).astype(np.int64)
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit
    keep = src != dst
    src, dst = src[keep], dst[keep]
    pairs = np.unique(np.stack([src, dst], axis=1), axis=0)
    src, dst = pairs[:, 0], pairs[:, 1]
    weight = rng.random(src.size) + 0.5 if weighted else None
    return CSRGraph(num_vertices, src, dst, weight)


def _hash_weights(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Deterministic per-edge weights in [0.5, 1.5), derived from the
    endpoints alone.

    The streamed generator builds the CSR and CSC sides in two
    independent disk passes, so a weight must be recomputable from
    ``(src, dst)`` wherever the pair surfaces -- an rng stream would
    tie weights to visit order and break CSR/CSC agreement (and with
    it bit-for-bit equality across storage tiers)."""
    mixed = (src.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)
             + dst.astype(np.uint64) * np.uint64(0xBF58476D1CE4E5B9))
    mixed ^= mixed >> np.uint64(29)
    mixed *= np.uint64(0x94D049BB133111EB)
    mixed ^= mixed >> np.uint64(32)
    fraction = (mixed >> np.uint64(11)).astype(np.float64) / float(1 << 53)
    return fraction + 0.5


def _rmat_chunk(rng, count: int, scale: int,
                a: float, ab: float, abc: float):
    """One chunk of the RMAT rng stream: ``count`` quadrant draws with
    self-loops dropped.  Both xl build paths (streamed and
    materialized) consume chunks through here, so they see the same
    edges for the same ``(seed, chunk_edges)``."""
    src = np.zeros(count, dtype=np.int64)
    dst = np.zeros(count, dtype=np.int64)
    for _ in range(scale):
        rand = rng.random(count)
        src = (src << 1) | (rand >= ab)
        dst = (dst << 1) | (((rand >= a) & (rand < ab))
                            | (rand >= abc))
    keep = src != dst
    return src[keep], dst[keep]


def _dedup_sorted(key: np.ndarray, other: np.ndarray):
    """Sort ``(key, other)`` pairs lexicographically and drop duplicate
    pairs -- the same result as ``np.unique(pairs, axis=0)`` without
    its void-row copies, which keeps the per-bucket heap transient of
    the streamed build near the bucket size."""
    order = np.lexsort((other, key))
    key, other = key[order], other[order]
    if key.size:
        keep = np.empty(key.size, dtype=bool)
        keep[0] = True
        np.logical_or(key[1:] != key[:-1], other[1:] != other[:-1],
                      out=keep[1:])
        key, other = key[keep], other[keep]
    return key, other


def rmat_streamed(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    weighted: bool = True,
    store=None,
    chunk_edges: int = 1 << 20,
    spool_dir: Optional[str] = None,
) -> CSRGraph:
    """RMAT at out-of-core scale: edges stream to a disk spool in
    chunks, and the snapshot is assembled through a
    :class:`~repro.graph.storage.SnapshotStore` writer -- the full
    edge list never exists in heap at once.

    Three bounded passes:

    1. **Generate** -- RMAT chunks of ``chunk_edges`` edges (self-loops
       dropped) are partitioned into spool buckets twice, by source
       range (the CSR pass's input) and by destination range (the CSC
       pass's).  Peak heap: one chunk.
    2. **CSR** -- each source bucket is loaded, deduplicated and
       sorted by ``(src, dst)`` (a bucket holds every copy of its
       pairs, so per-bucket dedup is global dedup), its degree counts
       folded into the offsets, and its targets/weights appended to
       the store writer.  Peak heap: one bucket plus the O(V) offsets.
    3. **CSC** -- the same over destination buckets, sorted by
       ``(dst, src)``.

    Weights are hash-derived from the endpoints (:func:`_hash_weights`)
    so both passes agree bit-for-bit; the result is identical whichever
    store builds it.  ``store=None`` builds in heap.  The rng stream is
    consumed chunk-by-chunk, so ``chunk_edges`` is part of the
    determinism contract alongside ``seed`` -- equality across storage
    tiers holds because both build with the same chunk size, not in
    spite of it.
    """
    from repro.graph.storage import HeapStore

    if not 0 < a + b + c < 1:
        raise ValueError("a + b + c must be in (0, 1)")
    if store is None:
        store = HeapStore()
    num_vertices = 1 << scale
    num_edges = edge_factor * num_vertices
    # ~2 chunks of edges per bucket keeps pass-2/3 peak heap near the
    # chunk size while bounding the bucket file count.
    buckets = max(1, min(num_vertices,
                         num_edges // max(chunk_edges * 2, 1) or 1))
    shift = max(0, scale - (buckets - 1).bit_length())
    buckets = (num_vertices + (1 << shift) - 1) >> shift

    spool = spool_dir or tempfile.mkdtemp(prefix="repro-rmat-xl-")
    own_spool = spool_dir is None
    os.makedirs(spool, exist_ok=True)
    rng = np.random.default_rng(seed)
    ab, abc = a + b, a + b + c
    try:
        out_files = [open(os.path.join(spool, f"src-{i:04d}.bin"), "wb")
                     for i in range(buckets)]
        in_files = [open(os.path.join(spool, f"dst-{i:04d}.bin"), "wb")
                    for i in range(buckets)]
        try:
            remaining = num_edges
            while remaining > 0:
                count = min(chunk_edges, remaining)
                remaining -= count
                src, dst = _rmat_chunk(rng, count, scale, a, ab, abc)
                pair = np.empty((src.size, 2), dtype=np.int64)
                pair[:, 0], pair[:, 1] = src, dst
                for index in np.unique(src >> shift):
                    rows = pair[(src >> shift) == index]
                    out_files[index].write(rows.tobytes())
                for index in np.unique(dst >> shift):
                    rows = pair[(dst >> shift) == index]
                    in_files[index].write(rows.tobytes())
        finally:
            for handle in out_files + in_files:
                handle.close()

        writer = store.writer()
        try:
            out_degrees = np.zeros(num_vertices, dtype=np.int64)
            for index in range(buckets):
                path = os.path.join(spool, f"src-{index:04d}.bin")
                pair = np.fromfile(path, dtype=np.int64).reshape(-1, 2)
                os.remove(path)
                if pair.size == 0:
                    continue
                src, dst = _dedup_sorted(pair[:, 0].copy(),
                                         pair[:, 1].copy())
                del pair
                out_degrees += np.bincount(src, minlength=num_vertices)
                writer.append("out_targets", dst)
                writer.append("out_weights",
                              _hash_weights(src, dst) if weighted
                              else np.ones(src.size))
            offsets = np.zeros(num_vertices + 1, dtype=np.int64)
            np.cumsum(out_degrees, out=offsets[1:])
            writer.append("out_offsets", offsets)

            in_degrees = np.zeros(num_vertices, dtype=np.int64)
            for index in range(buckets):
                path = os.path.join(spool, f"dst-{index:04d}.bin")
                pair = np.fromfile(path, dtype=np.int64).reshape(-1, 2)
                os.remove(path)
                if pair.size == 0:
                    continue
                dst, src = _dedup_sorted(pair[:, 1].copy(),
                                         pair[:, 0].copy())
                del pair
                in_degrees += np.bincount(dst, minlength=num_vertices)
                writer.append("in_sources", src)
                writer.append("in_weights",
                              _hash_weights(src, dst) if weighted
                              else np.ones(src.size))
            offsets = np.zeros(num_vertices + 1, dtype=np.int64)
            np.cumsum(in_degrees, out=offsets[1:])
            writer.append("in_offsets", offsets)
            return writer.commit(num_vertices)
        except BaseException:
            writer.abort()
            raise
    finally:
        if own_spool:
            shutil.rmtree(spool, ignore_errors=True)


def rmat_xl(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    weighted: bool = True,
    store=None,
    chunk_edges: int = 1 << 20,
) -> CSRGraph:
    """Build an xl-tier RMAT snapshot through a
    :class:`~repro.graph.storage.SnapshotStore`, by the path each
    storage tier actually uses:

    - **mmap** stores take the out-of-core spool build
      (:func:`rmat_streamed`): edge chunks are never all in heap and
      the snapshot lands as memmapped segment files;
    - **heap** stores take the conventional in-core pipeline -- the
      full edge list is materialized, globally deduplicated and pushed
      through the sorting :class:`~repro.graph.csr.CSRGraph`
      constructor -- exactly the path the spool build exists to
      replace, which is what makes the xl matrix's peak-RSS
      comparison between the two tiers meaningful.

    Both paths consume the identical chunked rng stream and derive
    weights from :func:`_hash_weights`, so the resulting snapshots are
    bit-for-bit equal across tiers.
    """
    from repro.graph.storage import HeapStore

    if store is None:
        store = HeapStore()
    if getattr(store, "kind", "heap") == "mmap":
        return rmat_streamed(scale, edge_factor, a, b, c, seed=seed,
                             weighted=weighted, store=store,
                             chunk_edges=chunk_edges)
    if not 0 < a + b + c < 1:
        raise ValueError("a + b + c must be in (0, 1)")
    num_vertices = 1 << scale
    num_edges = edge_factor * num_vertices
    rng = np.random.default_rng(seed)
    ab, abc = a + b, a + b + c
    chunks = []
    remaining = num_edges
    while remaining > 0:
        count = min(chunk_edges, remaining)
        remaining -= count
        chunks.append(_rmat_chunk(rng, count, scale, a, ab, abc))
    src = np.concatenate([chunk[0] for chunk in chunks])
    dst = np.concatenate([chunk[1] for chunk in chunks])
    del chunks
    pairs = np.unique(np.stack([src, dst], axis=1), axis=0)
    src, dst = pairs[:, 0].copy(), pairs[:, 1].copy()
    del pairs
    weight = _hash_weights(src, dst) if weighted else None
    return store.publish(CSRGraph(num_vertices, src, dst, weight))


def erdos_renyi(
    num_vertices: int,
    num_edges: int,
    seed: int = 0,
    weighted: bool = False,
) -> CSRGraph:
    """Uniform random directed graph without duplicates or self-loops."""
    rng = np.random.default_rng(seed)
    collected_src = []
    collected_dst = []
    seen = set()
    remaining = num_edges
    max_possible = num_vertices * (num_vertices - 1)
    if num_edges > max_possible:
        raise ValueError("requested more edges than a simple digraph allows")
    while remaining > 0:
        src = rng.integers(0, num_vertices, size=2 * remaining)
        dst = rng.integers(0, num_vertices, size=2 * remaining)
        for s, d in zip(src.tolist(), dst.tolist()):
            if s == d or (s, d) in seen:
                continue
            seen.add((s, d))
            collected_src.append(s)
            collected_dst.append(d)
            remaining -= 1
            if remaining == 0:
                break
    src_arr = np.array(collected_src, dtype=np.int64)
    dst_arr = np.array(collected_dst, dtype=np.int64)
    weight = rng.random(src_arr.size) + 0.5 if weighted else None
    return CSRGraph(num_vertices, src_arr, dst_arr, weight)


def preferential_attachment(
    num_vertices: int,
    out_degree: int = 4,
    seed: int = 0,
    weighted: bool = False,
) -> CSRGraph:
    """Barabasi-Albert style growth: new vertices attach preferentially.

    Produces a heavily skewed in-degree distribution, useful for the
    Hi/Lo mutation-workload experiments (paper Table 8).
    """
    rng = np.random.default_rng(seed)
    if num_vertices <= out_degree:
        raise ValueError("need more vertices than the attachment degree")
    src_list = []
    dst_list = []
    # Repeated-endpoints list implements preferential sampling.
    endpoints = list(range(out_degree))
    for v in range(out_degree, num_vertices):
        chosen = set()
        while len(chosen) < out_degree:
            chosen.add(endpoints[rng.integers(0, len(endpoints))])
        for u in chosen:
            src_list.append(v)
            dst_list.append(u)
            endpoints.append(u)
        endpoints.append(v)
    src = np.array(src_list, dtype=np.int64)
    dst = np.array(dst_list, dtype=np.int64)
    weight = rng.random(src.size) + 0.5 if weighted else None
    return CSRGraph(num_vertices, src, dst, weight)


def watts_strogatz(
    num_vertices: int,
    neighbors_each_side: int = 4,
    rewire_probability: float = 0.05,
    seed: int = 0,
    weighted: bool = False,
) -> CSRGraph:
    """Small-world ring lattice with sparse random rewiring.

    Low rewiring keeps the diameter high and edge locality strong --
    the structural profile of *web* graphs (the paper's UKDomain), where
    mutation impact stays local and incremental processing wins big, as
    opposed to the low-diameter social graphs RMAT models.
    """
    if neighbors_each_side < 1:
        raise ValueError("need at least one neighbour per side")
    rng = np.random.default_rng(seed)
    src_list = []
    dst_list = []
    for offset in range(1, neighbors_each_side + 1):
        base = np.arange(num_vertices, dtype=np.int64)
        src_list.extend([base, base])
        dst_list.extend(
            [(base + offset) % num_vertices, (base - offset) % num_vertices]
        )
    src = np.concatenate(src_list)
    dst = np.concatenate(dst_list)
    rewired = rng.random(src.size) < rewire_probability
    dst = dst.copy()
    dst[rewired] = rng.integers(0, num_vertices, size=int(rewired.sum()))
    keep = src != dst
    src, dst = src[keep], dst[keep]
    pairs = np.unique(np.stack([src, dst], axis=1), axis=0)
    src, dst = pairs[:, 0], pairs[:, 1]
    weight = rng.random(src.size) + 0.5 if weighted else None
    return CSRGraph(num_vertices, src, dst, weight)


def grid_graph(rows: int, cols: int) -> CSRGraph:
    """Directed 2D grid: edges right and down (deterministic, unskewed)."""
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return CSRGraph.from_edges(edges, num_vertices=rows * cols)


def star_graph(num_leaves: int, outward: bool = True) -> CSRGraph:
    """Star with hub 0; ``outward`` controls edge direction."""
    hub = 0
    leaves = range(1, num_leaves + 1)
    if outward:
        edges = [(hub, leaf) for leaf in leaves]
    else:
        edges = [(leaf, hub) for leaf in leaves]
    return CSRGraph.from_edges(edges, num_vertices=num_leaves + 1)


def cycle_graph(num_vertices: int) -> CSRGraph:
    edges = [(v, (v + 1) % num_vertices) for v in range(num_vertices)]
    return CSRGraph.from_edges(edges, num_vertices=num_vertices)


def complete_graph(num_vertices: int) -> CSRGraph:
    edges = [
        (u, v)
        for u in range(num_vertices)
        for v in range(num_vertices)
        if u != v
    ]
    return CSRGraph.from_edges(edges, num_vertices=num_vertices)


def bipartite_graph(
    num_users: int,
    num_items: int,
    edges_per_user: int = 4,
    seed: int = 0,
) -> CSRGraph:
    """Random user->item bipartite graph (Collaborative Filtering input).

    Users are ids ``0..num_users-1``, items ``num_users..num_users+num_items-1``.
    Edges carry rating-like weights in [1, 5].
    """
    rng = np.random.default_rng(seed)
    src_list = []
    dst_list = []
    for u in range(num_users):
        items = rng.choice(num_items, size=min(edges_per_user, num_items),
                           replace=False)
        for it in items.tolist():
            src_list.append(u)
            dst_list.append(num_users + it)
    src = np.array(src_list, dtype=np.int64)
    dst = np.array(dst_list, dtype=np.int64)
    # Ratings, plus the mirrored item->user edges so computation is two-way.
    weight = rng.integers(1, 6, size=src.size).astype(np.float64)
    all_src = np.concatenate([src, dst])
    all_dst = np.concatenate([dst, src])
    all_weight = np.concatenate([weight, weight])
    return CSRGraph(num_users + num_items, all_src, all_dst, all_weight)


#: Scaled-down stand-ins for the paper's datasets (Table 2).  The scale
#: parameter is the RMAT log2 vertex count; ordering matches the paper's
#: size ordering WK < UK < TW < TT < FT < YH.  UK is special-cased below:
#: UKDomain is a *web* graph (high diameter, strong locality), which we
#: model with a small-world lattice instead of RMAT.
PAPER_GRAPH_SCALES: Dict[str, Tuple[int, int]] = {
    "WK": (11, 12),  # Wiki          ~2K vertices, ~20K edges
    "UK": (12, 6),   # UKDomain      ~4K vertices, ~45K edges (lattice)
    "TW": (13, 14),  # Twitter       ~8K vertices, ~90K edges
    "TT": (13, 18),  # TwitterMPI    ~8K vertices, ~110K edges
    "FT": (14, 16),  # Friendster    ~16K vertices, ~200K edges
    "YH": (15, 18),  # Yahoo         ~32K vertices, ~500K edges
}


def paper_graph(name: str, seed: Optional[int] = None,
                weighted: bool = False) -> CSRGraph:
    """A scaled-down synthetic stand-in for one of the paper's graphs."""
    if name not in PAPER_GRAPH_SCALES:
        raise KeyError(
            f"unknown paper graph {name!r}; choose from "
            f"{sorted(PAPER_GRAPH_SCALES)}"
        )
    scale, edge_factor = PAPER_GRAPH_SCALES[name]
    if seed is None:
        seed = sum(ord(ch) for ch in name)
    if name == "UK":
        return watts_strogatz(
            1 << scale,
            neighbors_each_side=edge_factor,
            rewire_probability=0.02,
            seed=seed,
            weighted=weighted,
        )
    return rmat(scale, edge_factor, seed=seed, weighted=weighted)
