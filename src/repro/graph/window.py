"""Sliding-window view over an append-only edge stream.

Many streaming-graph deployments analyse only the *recent* graph: an
edge (an interaction, a packet flow, a transaction) is relevant for a
window of time and then expires.  :class:`SlidingWindowStream` converts
an append-only stream of edge observations into the mutation batches
GraphBolt consumes: each step's batch adds the new observations and
deletes the observations that just aged out of the window.

Expiry is *last-appearance* based: re-observing an edge inside the
window refreshes its lifetime (and its weight), so an edge is deleted
only when its most recent observation expires.  This makes the emitted
stream deletion-heavy in steady state -- roughly one deletion per
addition -- which is exactly the regime dependency-driven refinement
must handle (its ⋃– operator does as much work as ⊎).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.graph.mutation import MutationBatch

__all__ = ["SlidingWindowStream"]

Edge = Tuple[int, int]


class SlidingWindowStream:
    """Windowed batch construction over edge observations."""

    def __init__(self, window: int) -> None:
        """``window`` counts steps an observation stays live: an edge
        observed at step t expires at the start of step t + window."""
        if window < 1:
            raise ValueError("window must be at least one step")
        self.window = window
        self._steps: Deque[List[Edge]] = deque()
        self._last_seen: Dict[Edge, int] = {}
        self._weights: Dict[Edge, float] = {}
        self.step = 0

    # ------------------------------------------------------------------
    @property
    def live_edges(self) -> int:
        return len(self._last_seen)

    def __contains__(self, edge: Edge) -> bool:
        return edge in self._last_seen

    # ------------------------------------------------------------------
    def advance(
        self,
        observations: Iterable[Edge],
        weights: Optional[Iterable[float]] = None,
    ) -> MutationBatch:
        """Ingest one step's observations; return the mutation batch.

        The batch contains: deletions of edges whose last observation
        just fell out of the window, and additions (or weight
        refreshes, expressed as delete+add) for observations that are
        new or carry a changed weight.  Re-observations with an
        unchanged weight only refresh the lifetime.
        """
        observed = list(observations)
        if weights is None:
            weight_list = [1.0] * len(observed)
        else:
            weight_list = [float(w) for w in weights]
            if len(weight_list) != len(observed):
                raise ValueError("weights must match observations")

        additions: List[Edge] = []
        add_weights: List[float] = []
        replacements: List[Edge] = []
        step_edges: List[Edge] = []
        for edge, weight in zip(observed, weight_list):
            edge = (int(edge[0]), int(edge[1]))
            step_edges.append(edge)
            if edge not in self._last_seen:
                additions.append(edge)
                add_weights.append(weight)
            elif self._weights[edge] != weight:
                replacements.append(edge)
                additions.append(edge)
                add_weights.append(weight)
            self._last_seen[edge] = self.step
            self._weights[edge] = weight

        self._steps.append(step_edges)
        expired: List[Edge] = []
        if len(self._steps) > self.window:
            for edge in self._steps.popleft():
                if self._last_seen.get(edge) == self.step - self.window:
                    expired.append(edge)
                    del self._last_seen[edge]
                    del self._weights[edge]
        self.step += 1

        return MutationBatch.from_edges(
            additions=additions,
            deletions=expired + replacements,
            add_weights=add_weights,
        )

    def __repr__(self) -> str:
        return (
            f"SlidingWindowStream(window={self.window}, step={self.step}, "
            f"live={self.live_edges})"
        )
