"""Microbenchmarks of the substrate primitives.

These are conventional pytest-benchmark measurements (multiple rounds)
of the hot paths every experiment sits on: CSR construction, batch
structure adjustment (the paper's two-pass scheme, section 4.1),
frontier edge gathering, one delta iteration, and one refinement pass.
"""

import numpy as np
import pytest

from repro.algorithms import LabelPropagation, PageRank
from repro.bench.workloads import uniform_batch
from repro.core.engine import GraphBoltEngine
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat
from repro.graph.mutable import StreamingGraph
from repro.ligra.delta import DeltaEngine
from repro.ligra.frontier import VertexSubset
from repro.ligra.interface import edge_map


@pytest.fixture(scope="module")
def graph():
    return rmat(scale=12, edge_factor=12, seed=1, weighted=True)


def test_micro_csr_construction(benchmark, graph):
    src, dst, weight = graph.all_edges()
    benchmark(CSRGraph, graph.num_vertices, src, dst, weight)


def test_micro_structure_adjustment(benchmark, graph):
    batch = uniform_batch(graph, 100, seed=2)

    def adjust():
        StreamingGraph(graph).apply_batch(batch)

    benchmark(adjust)


def test_micro_edge_map_gather(benchmark, graph):
    rng = np.random.default_rng(3)
    frontier = VertexSubset.from_ids(
        graph.num_vertices,
        rng.choice(graph.num_vertices, size=graph.num_vertices // 20,
                   replace=False),
    )
    benchmark(edge_map, graph, frontier)


def test_micro_delta_iteration(benchmark, graph):
    engine = DeltaEngine(PageRank())
    state = engine.initial_state(graph)
    engine.step(graph, state)

    def one_step():
        engine.step(graph, state.copy())

    benchmark(one_step)


def test_micro_refinement_pass(benchmark, graph):
    engine = GraphBoltEngine(LabelPropagation(num_labels=3, seed_every=3,
                                              tolerance=1e-3),
                             num_iterations=10)
    engine.run(graph)
    counter = iter(range(10_000))

    def apply_once():
        engine.apply_mutations(
            uniform_batch(engine.graph, 10, seed=next(counter))
        )

    benchmark.pedantic(apply_once, rounds=5, iterations=1)
