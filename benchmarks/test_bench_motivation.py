"""Motivation experiment: tag-based correction resets the majority.

Paper claim (sections 1/2.2, citing KickStarter): the straightforward
alternative to dependency-driven refinement -- tag everything downstream
of a mutation and recompute it -- "ends up tagging majority of vertex
values to be thrown out", even for tiny mutations.
"""

from repro.bench.experiments import experiment_motivation_tagging
from repro.bench.reporting import save_results


def test_motivation_tagging_resets_majority(run_experiment):
    payload = run_experiment(experiment_motivation_tagging)
    save_results("motivation_tagging", payload)

    detail = payload["detail"]
    single_edge = [
        fraction for key, fraction in detail.items()
        if key.endswith("|1")
    ]
    # Even a single edge mutation taints most of every graph within the
    # 10-iteration window.
    assert all(fraction > 0.5 for fraction in single_edge), detail
    # And tagging is monotone in batch size.
    for graph in {key.split("|")[0] for key in detail}:
        sizes = sorted(
            int(key.split("|")[1])
            for key in detail if key.startswith(f"{graph}|")
        )
        fractions = [detail[f"{graph}|{size}"] for size in sizes]
        assert fractions == sorted(fractions), (graph, fractions)
