"""Figure 9: SSSP -- KickStarter vs GraphBolt vs Differential Dataflow.

Paper claims: KickStarter, specialised for monotonic path algorithms
with O(V) dependency trees, outperforms GraphBolt on SSSP (GraphBolt
pays for per-iteration dependency tracking and min re-evaluation);
with additions only, both engines process updates efficiently; the
generic dataflow engine trails the graph engines.
"""

from repro.bench.experiments import experiment_figure9
from repro.bench.reporting import save_results


def test_figure9_kickstarter_comparison(run_experiment):
    payload = run_experiment(experiment_figure9)
    save_results("figure9", payload)

    # Edge computations are deterministic, so the paper's "KickStarter
    # performs far fewer edge computations" claim is asserted on them
    # (the paper measures 14x); wall-clock is recorded in the payload.
    for panel, edges in payload["edges"].items():
        kick_total = sum(edges["KickStarter"])
        bolt_total = sum(edges["GraphBolt"])
        assert kick_total * 2 < bolt_total, (panel, kick_total, bolt_total)

    for panel, series in payload["series"].items():
        if "DifferentialDataflow" in series:
            kick_seconds = sum(series["KickStarter"])
            dd_seconds = sum(series["DifferentialDataflow"])
            assert kick_seconds < dd_seconds, panel

    # Additions-only avoids min re-evaluation, so GraphBolt gets closer
    # to (or cheaper than) its mixed-stream cost.
    mixed = sum(payload["edges"]["adds+dels"]["GraphBolt"])
    adds = sum(payload["edges"]["adds-only"]["GraphBolt"])
    assert adds <= mixed * 1.5
