"""Table 7: edge computations on the YH stand-in.

Paper claim: on the largest graph GraphBolt performs a small fraction
of GB-Reset's edge computations, and the fraction grows with the
mutation batch size.
"""

from repro.bench.experiments import experiment_table7
from repro.bench.reporting import save_results


def test_table7_yh_edge_computations(run_experiment):
    payload = run_experiment(
        experiment_table7, algorithms=["PR", "LP", "CoEM"]
    )
    save_results("table7", payload)

    detail = payload["detail"]
    for algo in ("PR", "LP", "CoEM"):
        percents = [
            detail[f"{algo}|{batch}"]["percent"] for batch in (10, 100, 1000)
        ]
        # Never more work than GB-Reset; more mutations -> more work.
        assert all(p <= 100.001 for p in percents), (algo, percents)
        assert percents[0] <= percents[-1] * 1.05, (algo, percents)
    # The stabilising algorithms see large savings at small batches.
    assert detail["LP|10"]["percent"] < 50
