"""Table 5 + Figure 6: Ligra vs GB-Reset vs GraphBolt.

Paper claims under test, per algorithm across the five graphs and three
(scaled) batch sizes:

- GraphBolt never performs more edge computations than GB-Reset
  (Figure 6's ratio <= 1), and at the smallest batch size the ratio is
  well below 1;
- results match from-scratch execution (validated inside the driver);
- TC's incremental maintenance beats recomputation by orders of
  magnitude in edge computations (its mutation impact is local).
"""

import pytest

from repro.bench.matrix import driver_kwargs, run_driver
from repro.bench.reporting import save_results

# The algorithm grid is declared once, in the run table; the per-algo
# parametrisation below just slices it so failures stay attributable.
ALGOS = driver_kwargs("table5")["algorithms"]


@pytest.mark.parametrize("algo", ALGOS)
def test_table5_engine_comparison(run_experiment, algo):
    payload = run_experiment(
        run_driver, "table5", algorithms=[algo], num_batches=1
    )
    save_results(f"table5_{algo}", payload)

    ratios = {}
    for key, cell in payload["cells"].items():
        _, graph_name, batch = key.split("|")
        bolt_edges = cell["GraphBolt"]["edges"]
        reset_edges = cell["GB-Reset"]["edges"]
        ratios[(graph_name, int(batch))] = bolt_edges / max(reset_edges, 1)

    # At saturation batch sizes (1000 mutations is up to 5% of the small
    # stand-in graphs' edges -- hundreds of times the paper's relative
    # mutation rate) incremental processing degrades gracefully to
    # ~parity; it must never exceed the baseline by more than that.
    assert all(ratio <= 1.2 for ratio in ratios.values()), ratios
    smallest = min(batch for _, batch in ratios)
    small_ratios = [
        ratio for (_, batch), ratio in ratios.items() if batch == smallest
    ]
    threshold = 0.01 if algo == "TC" else 0.95
    assert min(small_ratios) < threshold, ratios
