"""Ablations of GraphBolt's own design knobs (DESIGN.md A1/A3).

- Pruning horizon: tracking fewer iterations trades refinement reach
  (more hybrid forward work) for memory; memory must grow monotonically
  with the horizon and horizon 0 must degenerate to pure forward
  execution.
- Dense-refinement threshold: the computation-aware switch must never
  lose to either fixed extreme by a large margin.
"""

from repro.bench.experiments import (
    experiment_ablation_dense_mode,
    experiment_ablation_pruning,
    experiment_ablation_structure,
)
from repro.bench.reporting import save_results


def test_ablation_pruning_horizon(run_experiment):
    payload = run_experiment(experiment_ablation_pruning)
    save_results("ablation_pruning", payload)

    rows = payload["rows"]
    bytes_by_horizon = [(row[0], row[2]) for row in rows]
    for (h1, b1), (h2, b2) in zip(bytes_by_horizon, bytes_by_horizon[1:]):
        assert b2 >= b1, f"memory must grow with horizon: {h1}->{h2}"
    # Horizon 0 stores nothing and refines nothing.
    first = rows[0]
    assert first[0] == 0 and first[2] == 0 and first[4] == 0
    # Full horizon leaves nothing for hybrid execution.
    assert rows[-1][5] == 0


def test_ablation_structure_adjustment(run_experiment):
    """Paper section 4.1: a STINGER-style structure must adjust faster
    than rebuilding CSR/CSC for small batches (the common case)."""
    payload = run_experiment(experiment_ablation_structure)
    save_results("ablation_structure", payload)

    detail = payload["detail"]
    smallest = str(min(int(k) for k in detail))
    assert detail[smallest]["speedup"] > 2.0, detail
    # Both backends must stay faster than, or comparable at, every size.
    for cell in detail.values():
        assert cell["speedup"] > 0.8, detail


def test_ablation_dense_refinement_threshold(run_experiment):
    payload = run_experiment(experiment_ablation_dense_mode)
    save_results("ablation_dense_mode", payload)

    rows = {row[0]: row for row in payload["rows"]}
    always_dense = rows[0.0]
    never_dense = rows[1.01]
    tuned = rows[0.3]
    # The adaptive threshold should not do more edge work than the
    # always-dense extreme, and should beat never-dense when changes
    # cascade (BP on a social graph saturates mid-window).
    assert tuned[2] <= always_dense[2] * 1.001
    assert tuned[1] <= max(always_dense[1], never_dense[1]) * 1.5


def test_ablation_tagreset_corrector(run_experiment):
    """Correctors head to head (paper sections 1/2.2): the GraphIn-style
    tag+recompute corrector tags the majority of the graph and performs
    orders of magnitude more edge work than dependency-driven
    refinement, while both stay BSP-correct."""
    from repro.bench.experiments import experiment_ablation_tagreset

    payload = run_experiment(experiment_ablation_tagreset)
    save_results("ablation_tagreset", payload)

    detail = payload["detail"]
    for cell in detail.values():
        assert cell["tagged_fraction"] > 0.5
        assert cell["edge_ratio"] > 5
    # The gap is largest for the smallest batch.
    assert detail["1"]["edge_ratio"] > detail["100"]["edge_ratio"]
