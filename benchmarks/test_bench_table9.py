"""Table 9: memory overhead of dependency tracking.

Paper claims: tracked aggregation values cost a modest fraction of
baseline engine state for the scalar/vector algorithms (O(V) per
tracked iteration, shrunk by vertical pruning), rising for CF (larger
aggregation values) and TC (retains the pre-mutation structure,
approaching 2x).
"""

from repro.bench.matrix import run_driver
from repro.bench.reporting import save_results


def test_table9_memory_overhead(run_experiment):
    payload = run_experiment(run_driver, "table9", graphs=("WK", "TW", "FT"))
    save_results("table9", payload)

    detail = payload["detail"]
    for key, cell in detail.items():
        algo = key.split("|")[0]
        if algo == "TC":
            # Retaining the old CSR/CSC roughly doubles memory.
            assert 50 <= cell["overhead_percent"] <= 120, key
        else:
            assert cell["overhead_percent"] > 0, key

    # CF tracks K*(K+1)-wide aggregation values against K-wide vertex
    # values, so its overhead tops the simple-aggregation algorithms'.
    for graph in ("WK", "TW", "FT"):
        cf = detail[f"CF|{graph}"]["overhead_percent"]
        pr = detail[f"PR|{graph}"]["overhead_percent"]
        assert cf > pr, (graph, cf, pr)
