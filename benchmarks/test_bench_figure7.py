"""Figure 7: sensitivity to the mutation batch size (1 .. 10K scaled
from the paper's 1 .. 1M).

Paper claims: GraphBolt's work grows with the batch size, yet even at
the largest batch it does not exceed GB-Reset; at small batches the
reduction is large.
"""

from repro.bench.experiments import experiment_figure7
from repro.bench.reporting import save_results


def test_figure7_batch_size_sweep(run_experiment):
    payload = run_experiment(
        experiment_figure7, algorithms=["PR", "LP", "BP"]
    )
    save_results("figure7", payload)

    for algo, series in payload["series"].items():
        bolt = series["GraphBolt-edges"]
        reset = series["GB-Reset-edges"]
        # Work grows (weakly) with mutation count across the sweep.
        assert bolt[0] <= bolt[-1] * 1.05, (algo, bolt)
        # Incremental computation stays useful even at the largest batch
        # (10K mutations is ~8% of the stand-in graph -- far beyond the
        # paper's relative rate -- where it degrades gracefully to
        # ~parity with GB-Reset).
        assert all(b <= r * 1.2 for b, r in zip(bolt, reset)), algo
        # And is a clear win at a single edge mutation.
        if algo in ("LP", "BP"):
            assert bolt[0] < reset[0] * 0.5, (algo, bolt[0], reset[0])
