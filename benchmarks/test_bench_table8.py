"""Table 8: high- versus low-degree mutation workloads.

Paper claim: mutations targeting high-out-degree vertices (Hi) cost
more than mutations targeting low-degree vertices (Lo), because the
blast radius of the change is larger -- yet GraphBolt handles both
incrementally.
"""

from repro.bench.experiments import experiment_table8
from repro.bench.reporting import save_results


def test_table8_hi_lo_workloads(run_experiment):
    payload = run_experiment(
        experiment_table8, algorithms=["LP", "BP", "CoEM"]
    )
    save_results("table8", payload)

    for key, cell in payload["detail"].items():
        # Mutations landing on high-out-degree vertices fan out to far
        # more edges than low-degree-targeted ones (deterministic edge
        # counts; wall-clock is recorded in the payload).
        assert cell["hi_edges"] > cell["lo_edges"] * 1.5, (key, cell)
