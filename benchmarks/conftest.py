"""Shared helpers for the benchmark suite.

Every ``test_bench_*`` module drives one paper table/figure through the
experiment drivers in :mod:`repro.bench.experiments`, asserts the
paper's qualitative claims on the measured payload, and persists the
payload under ``benchmarks/results/`` for EXPERIMENTS.md.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_experiment(benchmark):
    """Benchmark an experiment driver once and return its payload."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(
            lambda: fn(*args, **kwargs), rounds=1, iterations=1
        )

    return runner
