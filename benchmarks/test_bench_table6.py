"""Table 6: core scaling on the YH stand-in (measured-makespan model).

Paper claim: increasing cores from 32 to 96 reduces everyone's time,
but GraphBolt's *speedup over GB-Reset shrinks*, because GB-Reset has
far more parallelisable work while GraphBolt's small refinement is
span-bound.  Each engine runs on the sharded backend; the projection
schedules its *measured* per-shard load vector onto p cores (LPT
makespan, documented in DESIGN.md) and reports the vector's
load-imbalance factor.
"""

from repro.bench.matrix import run_driver
from repro.bench.reporting import save_results


def test_table6_core_scaling(run_experiment):
    payload = run_experiment(
        run_driver, "table6", algorithms=["PR", "LP", "BP"]
    )
    save_results("table6", payload)

    assert payload["num_shards"] == 96
    detail = payload["detail"]
    for algo in ("PR", "LP", "BP"):
        at32 = detail[f"{algo}|32"]
        at96 = detail[f"{algo}|96"]
        # More cores help every engine...
        for engine in ("Ligra", "GB-Reset", "GraphBolt"):
            assert at96["projected"][engine] <= at32["projected"][engine]
        # ...but GraphBolt's relative advantage shrinks (or at best
        # stays flat) as parallelism grows.
        assert at96["x_gbreset"] <= at32["x_gbreset"] * 1.05, algo
        # The projection derives from measured shard loads: every
        # engine must have recorded a populated vector with a finite
        # imbalance factor.
        for engine in ("Ligra", "GB-Reset", "GraphBolt"):
            assert at96["shard_loads"][engine], engine
            assert at96["imbalance"][engine] >= 1.0, engine
