"""Figure 8: GraphBolt vs Differential Dataflow on PageRank.

Paper claims: the graph-specialised engine outperforms the generic
differential engine across batch sizes; the delta formulation
(GraphBolt) beats the retract/propagate formulation (GraphBolt-RP);
and single-edge update latency has far higher variance under DD.
"""

import numpy as np

from repro.bench.experiments import experiment_figure8
from repro.bench.reporting import save_results


def test_figure8_differential_dataflow(run_experiment):
    payload = run_experiment(experiment_figure8)
    save_results("figure8", payload)

    sweep = payload["sweep"]
    for bolt, dd in zip(sweep["GraphBolt"], sweep["DifferentialDataflow"]):
        assert bolt < dd, "GraphBolt should beat the generic engine"
    # RP propagates two values per change; it must not beat plain delta
    # by more than noise, and typically loses.
    total_rp = sum(sweep["GraphBolt-RP"])
    total_delta = sum(sweep["GraphBolt"])
    assert total_delta <= total_rp * 1.25

    singles = payload["single_edge"]
    bolt_cv = np.std(singles["GraphBolt"]) / np.mean(singles["GraphBolt"])
    dd_cv = (
        np.std(singles["DifferentialDataflow"])
        / np.mean(singles["DifferentialDataflow"])
    )
    # The paper observes "very high variance" for DD single-edge
    # updates; at minimum DD's mean latency must be far worse.
    assert np.mean(singles["DifferentialDataflow"]) > 5 * np.mean(
        singles["GraphBolt"]
    ), (bolt_cv, dd_cv)
