"""Table 1: incorrect results from naive reuse of intermediate values.

Paper claim: reusing converged LP values directly on the mutated graph
leaves many vertices with >=1% relative error, and the error compounds
across subsequent batches.
"""

from repro.bench.experiments import experiment_table1
from repro.bench.reporting import save_results


def test_table1_naive_reuse_errors(run_experiment):
    payload = run_experiment(experiment_table1)
    save_results("table1", payload)

    over_1 = payload["over_1_percent"]
    over_10 = payload["over_10_percent"]
    # A significant share of vertices is wrong from the very first batch.
    assert over_1[0] > payload["num_vertices"] * 0.05
    # The paper's compounding effect: later batches are no better than
    # the first, and the >=1% census grows over the stream.
    assert over_1[-1] >= over_1[0]
    assert max(over_10) > 0
