"""Figure 4: vertex values stabilise as iterations progress.

Paper claim: most values change in the first ~5 iterations, after which
the changed-vertex density drops sharply -- the opportunity horizontal
and vertical pruning exploit.
"""

from repro.bench.experiments import experiment_figure4
from repro.bench.reporting import save_results


def test_figure4_stabilization(run_experiment):
    payload = run_experiment(experiment_figure4)
    save_results("figure4", payload)

    density = payload["density_per_iteration"]
    early = sum(density[:5]) / 5
    late = sum(density[5:]) / len(density[5:])
    # The late-window density collapses relative to the early window.
    assert late < early * 0.5
    # And the final iteration is nearly quiescent.
    assert density[-1] < 0.05
