"""Correctness of the differential graph programs."""

import numpy as np
import pytest

from repro.algorithms import PageRank, SSSP
from repro.dataflow.graph_programs import DifferentialPageRank, DifferentialSSSP
from repro.graph.generators import cycle_graph, rmat
from repro.graph.mutation import MutationBatch
from repro.ligra.engine import LigraEngine
from tests.conftest import make_random_batch


@pytest.fixture(scope="module")
def graph():
    return rmat(scale=6, edge_factor=4, seed=30, weighted=True)


class TestDifferentialPageRank:
    def test_initial_matches_engine(self, graph):
        dd = DifferentialPageRank(graph, num_iterations=8)
        truth = LigraEngine(PageRank()).run(graph, 8)
        assert np.allclose(dd.values, truth, atol=1e-9)

    def test_updates_match_engine(self, graph, rng):
        dd = DifferentialPageRank(graph, num_iterations=6)
        for _ in range(3):
            batch = make_random_batch(dd.graph, rng, 4, 4)
            dd.apply_mutations(batch)
            truth = LigraEngine(PageRank()).run(dd.graph, 6)
            assert np.allclose(dd.values, truth, atol=1e-9)

    def test_vertex_growth(self, graph):
        dd = DifferentialPageRank(graph, num_iterations=5)
        grown = graph.num_vertices + 2
        dd.apply_mutations(
            MutationBatch.from_edges(additions=[(0, grown - 1)],
                                     grow_to=grown)
        )
        truth = LigraEngine(PageRank()).run(dd.graph, 5)
        assert dd.values.shape == (grown,)
        assert np.allclose(dd.values, truth, atol=1e-9)

    def test_update_work_less_than_initial(self, graph):
        dd = DifferentialPageRank(graph, num_iterations=6)
        initial_work = dd.dataflow.records_processed
        rng = np.random.default_rng(1)
        dd.apply_mutations(make_random_batch(dd.graph, rng, 1, 0))
        update_work = dd.dataflow.records_processed - initial_work
        assert update_work < initial_work


class TestDifferentialSSSP:
    def test_initial_matches_engine(self, graph):
        dd = DifferentialSSSP(graph, source=0, num_stages=24)
        truth = LigraEngine(SSSP(0)).run(graph, until_convergence=True)
        both_inf = np.isinf(dd.values) & np.isinf(truth)
        assert np.allclose(dd.values[~both_inf], truth[~both_inf])
        assert np.array_equal(np.isinf(dd.values), np.isinf(truth))

    def test_updates_match_engine(self, graph, rng):
        dd = DifferentialSSSP(graph, source=0, num_stages=24)
        for _ in range(3):
            batch = make_random_batch(dd.graph, rng, 5, 5)
            dd.apply_mutations(batch)
            truth = LigraEngine(SSSP(0)).run(dd.graph,
                                             until_convergence=True)
            both_inf = np.isinf(dd.values) & np.isinf(truth)
            assert np.allclose(dd.values[~both_inf], truth[~both_inf])

    def test_deletion_reroutes(self):
        graph = cycle_graph(5)
        dd = DifferentialSSSP(graph, source=0, num_stages=10)
        assert dd.values.tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]
        dd.apply_mutations(
            MutationBatch.from_edges(additions=[(0, 3)],
                                     deletions=[(2, 3)])
        )
        assert dd.values.tolist() == [0.0, 1.0, 2.0, 1.0, 2.0]

    def test_stage_truncation_bounds_distances(self):
        # With fewer stages than the diameter, distances beyond the
        # window stay unreached -- the documented fixed-window semantic.
        graph = cycle_graph(10)
        dd = DifferentialSSSP(graph, source=0, num_stages=3)
        assert dd.values[3] == 3.0
        assert np.isinf(dd.values[9])


class TestDifferentialWCC:
    def test_matches_engine_on_symmetrised_graph(self, graph, rng):
        from repro.algorithms import ConnectedComponents
        from repro.dataflow.graph_programs import (
            DifferentialConnectedComponents,
        )
        from repro.graph.csr import CSRGraph

        dd = DifferentialConnectedComponents(graph, num_stages=24)
        src, dst, _ = graph.all_edges()
        sym = CSRGraph(
            graph.num_vertices,
            np.concatenate([src, dst]),
            np.concatenate([dst, src]),
        )
        truth = LigraEngine(ConnectedComponents()).run(
            sym, until_convergence=True, max_iterations=500
        )
        assert np.array_equal(dd.values, truth)

    def test_edge_addition_merges_components(self):
        from repro.dataflow.graph_programs import (
            DifferentialConnectedComponents,
        )
        from repro.graph.csr import CSRGraph

        graph = CSRGraph.from_edges([(0, 1), (2, 3)], num_vertices=4)
        dd = DifferentialConnectedComponents(graph, num_stages=8)
        assert dd.values.tolist() == [0.0, 0.0, 2.0, 2.0]
        dd.apply_mutations(MutationBatch.from_edges(additions=[(1, 2)]))
        assert dd.values.tolist() == [0.0, 0.0, 0.0, 0.0]

    def test_edge_deletion_splits_components(self):
        from repro.dataflow.graph_programs import (
            DifferentialConnectedComponents,
        )
        from repro.graph.csr import CSRGraph

        graph = CSRGraph.from_edges([(0, 1), (1, 2)], num_vertices=3)
        dd = DifferentialConnectedComponents(graph, num_stages=8)
        assert dd.values.tolist() == [0.0, 0.0, 0.0]
        dd.apply_mutations(MutationBatch.from_edges(deletions=[(1, 2)]))
        assert dd.values.tolist() == [0.0, 0.0, 2.0]
