"""Unit tests for dataflow timestamps."""

from repro.dataflow.timestamps import Timestamp


class TestOrdering:
    def test_lexicographic(self):
        assert Timestamp(0, 5) < Timestamp(1, 0)
        assert Timestamp(1, 0) < Timestamp(1, 1)
        assert Timestamp(2, 0) > Timestamp(1, 9)

    def test_equality_and_hash(self):
        assert Timestamp(1, 2) == Timestamp(1, 2)
        assert hash(Timestamp(1, 2)) == hash(Timestamp(1, 2))
        assert Timestamp(1, 2) != Timestamp(2, 1)

    def test_total_ordering_helpers(self):
        assert Timestamp(0, 0) <= Timestamp(0, 0)
        assert Timestamp(0, 1) >= Timestamp(0, 0)


class TestLattice:
    def test_join_meet(self):
        a, b = Timestamp(1, 3), Timestamp(2, 0)
        assert a.join(b) == b
        assert a.meet(b) == a
        assert a.join(a) == a

    def test_lattice_laws(self):
        times = [Timestamp(e, s) for e in range(3) for s in range(3)]
        for a in times:
            for b in times:
                assert a.join(b) == b.join(a)
                assert a.meet(b) == b.meet(a)
                assert a.join(a.meet(b)) == a
                assert a.meet(a.join(b)) == a


class TestAdvancement:
    def test_next_epoch_resets_step(self):
        assert Timestamp(3, 7).next_epoch() == Timestamp(4, 0)

    def test_next_step(self):
        assert Timestamp(3, 7).next_step() == Timestamp(3, 8)

    def test_repr(self):
        assert repr(Timestamp(1, 2)) == "(1, 2)"
