"""Unit tests for the static multiset collection calculus."""

import pytest

from repro.dataflow.collection import Collection


class TestMultisetBasics:
    def test_consolidation(self):
        coll = Collection([(("a",), 1), (("a",), 2), (("b",), 1),
                           (("b",), -1)])
        assert coll.multiplicity(("a",)) == 3
        assert coll.multiplicity(("b",)) == 0
        assert len(coll) == 1

    def test_from_records(self):
        coll = Collection.from_records([(1,), (1,), (2,)])
        assert coll.multiplicity((1,)) == 2

    def test_equality(self):
        a = Collection([((1,), 1), ((2,), 1)])
        b = Collection([((2,), 1), ((1,), 2), ((1,), -1)])
        assert a == b

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(Collection())

    def test_is_positive(self):
        assert Collection([((1,), 2)]).is_positive()
        assert not Collection([((1,), -1)]).is_positive()

    def test_diffs_deterministic(self):
        coll = Collection([((2,), 1), ((1,), 1)])
        assert coll.diffs() == coll.diffs()


class TestOperators:
    def test_map(self):
        coll = Collection([((1,), 2)])
        assert coll.map(lambda r: (r[0] * 10,)).multiplicity((10,)) == 2

    def test_filter(self):
        coll = Collection.from_records([(1,), (2,), (3,)])
        kept = coll.filter(lambda r: r[0] % 2 == 1)
        assert len(kept) == 2

    def test_flat_map(self):
        coll = Collection.from_records([(2,)])
        out = coll.flat_map(lambda r: [(r[0],), (r[0] + 1,)])
        assert out.multiplicity((2,)) == 1
        assert out.multiplicity((3,)) == 1

    def test_concat_and_negate_cancel(self):
        coll = Collection.from_records([(1,), (2,)])
        assert len(coll.concat(coll.negate())) == 0

    def test_join(self):
        left = Collection([(("k", 1), 2)])
        right = Collection([(("k", "x"), 3), (("other", "y"), 1)])
        joined = left.join(right)
        assert joined.multiplicity(("k", (1, "x"))) == 6
        assert len(joined) == 1

    def test_reduce_sum(self):
        coll = Collection([(("k", 2), 2), (("k", 3), 1), (("j", 5), 1)])
        out = coll.reduce(lambda key, values: [sum(values)])
        assert out.multiplicity(("k", 7)) == 1
        assert out.multiplicity(("j", 5)) == 1

    def test_reduce_rejects_negative(self):
        with pytest.raises(ValueError):
            Collection([(("k", 1), -1)]).reduce(lambda k, v: [len(v)])

    def test_distinct(self):
        coll = Collection([((1,), 5), ((2,), 1)])
        out = coll.distinct()
        assert out.multiplicity((1,)) == 1

    def test_count(self):
        coll = Collection([(("k", "a"), 2), (("k", "b"), 1)])
        assert coll.count().multiplicity(("k", 3)) == 1

    def test_linearity_of_join(self):
        # join(A + dA, B) == join(A, B) + join(dA, B)
        a = Collection([(("k", 1), 1)])
        da = Collection([(("k", 2), 1), (("k", 1), -1)])
        b = Collection([(("k", "v"), 2)])
        combined = a.concat(da).join(b)
        split = a.join(b).concat(da.join(b))
        assert combined == split
