"""Tests for the extended differential operators and the fixpoint driver."""

import pytest

from repro.dataflow.operators import Dataflow, iterate_to_fixpoint


class TestSemijoin:
    def test_filters_by_key_presence(self):
        df = Dataflow()
        data = df.input()
        keys = df.input()
        probe = data.stream.semijoin(keys.stream).probe()
        data.send_records([("a", 1), ("b", 2)])
        keys.send_records([("a",)])
        df.run()
        assert probe.state() == {("a", 1): 1}

    def test_key_retraction_removes_matches(self):
        df = Dataflow()
        data = df.input()
        keys = df.input()
        probe = data.stream.semijoin(keys.stream).probe()
        data.send_records([("a", 1)])
        keys.send_records([("a",)])
        df.run()
        df.advance_epoch()
        keys.send([(("a",), -1)])
        df.run()
        assert probe.state() == {}

    def test_duplicate_keys_do_not_multiply(self):
        df = Dataflow()
        data = df.input()
        keys = df.input()
        probe = data.stream.semijoin(keys.stream).probe()
        data.send_records([("a", 1)])
        keys.send([(("a",), 3)])
        df.run()
        assert probe.state() == {("a", 1): 1}


class TestAntijoin:
    def test_keeps_unmatched(self):
        df = Dataflow()
        data = df.input()
        keys = df.input()
        probe = data.stream.antijoin(keys.stream).probe()
        data.send_records([("a", 1), ("b", 2)])
        keys.send_records([("a",)])
        df.run()
        assert probe.state() == {("b", 2): 1}

    def test_key_arrival_evicts(self):
        df = Dataflow()
        data = df.input()
        keys = df.input()
        probe = data.stream.antijoin(keys.stream).probe()
        data.send_records([("a", 1)])
        df.run()
        assert probe.state() == {("a", 1): 1}
        df.advance_epoch()
        keys.send_records([("a",)])
        df.run()
        assert probe.state() == {}


class TestJoinMap:
    def test_applies_function(self):
        df = Dataflow()
        left = df.input()
        right = df.input()
        probe = left.stream.join_map(
            right.stream, lambda k, a, b: (k, a + b)
        ).probe()
        left.send_records([("k", 1)])
        right.send_records([("k", 10)])
        df.run()
        assert probe.state() == {("k", 11): 1}


class TestIterateToFixpoint:
    def build_reachability(self):
        """reach = distinct(roots ∪ head(reach ⋈ edges)), via feedback."""
        df = Dataflow()
        edges = df.input()          # (u, v)
        feedback = df.input()       # (u,) reachable facts re-entering
        roots = df.input()          # (u,)
        reach_in = roots.stream.concat(feedback.stream)
        hops = reach_in.map(lambda rec: (rec[0], ())).join(
            edges.stream
        ).map(lambda rec: (rec[1][1],))
        reach = reach_in.concat(hops).map(
            lambda rec: (rec[0], ())
        ).distinct().map(lambda rec: (rec[0],))
        return df, edges, feedback, roots, reach.probe()

    def test_transitive_closure(self):
        df, edges, feedback, roots, probe = self.build_reachability()
        edges.send_records([(0, 1), (1, 2), (3, 4)])
        roots.send_records([(0,)])
        steps = iterate_to_fixpoint(df, probe, feedback)
        assert steps >= 1
        assert set(probe.state()) == {(0,), (1,), (2,)}

    def test_incremental_edge_addition_extends_reach(self):
        df, edges, feedback, roots, probe = self.build_reachability()
        edges.send_records([(0, 1)])
        roots.send_records([(0,)])
        iterate_to_fixpoint(df, probe, feedback)
        df.advance_epoch()
        edges.send_records([(1, 5), (5, 6)])
        iterate_to_fixpoint(df, probe, feedback)
        assert set(probe.state()) == {(0,), (1,), (5,), (6,)}

    def test_divergent_loop_raises(self):
        df = Dataflow()
        feedback = df.input()
        # A non-contractive loop: every fact produces a new fact.
        probe = feedback.stream.map(
            lambda rec: (rec[0] + 1,)
        ).probe()
        feedback.send_records([(0,)])
        with pytest.raises(RuntimeError, match="fixpoint"):
            iterate_to_fixpoint(df, probe, feedback, max_steps=10)
