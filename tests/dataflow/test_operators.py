"""Unit and property tests for the streaming differential operators.

The central property: accumulating a stream of diffs through the
dataflow equals applying the batch calculus (:class:`Collection`) to the
accumulated input -- the differential correctness contract.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.collection import Collection
from repro.dataflow.operators import Dataflow


def accumulate(probe):
    return Collection(list(probe.state().items()))


class TestStatelessOperators:
    def test_map(self):
        df = Dataflow()
        inp = df.input()
        probe = inp.stream.map(lambda r: (r[0], r[1] * 2)).probe()
        inp.send_records([("a", 1), ("b", 3)])
        df.run()
        assert probe.state() == {("a", 2): 1, ("b", 6): 1}

    def test_filter(self):
        df = Dataflow()
        inp = df.input()
        probe = inp.stream.filter(lambda r: r[1] > 1).probe()
        inp.send_records([("a", 1), ("b", 3)])
        df.run()
        assert probe.state() == {("b", 3): 1}

    def test_flat_map(self):
        df = Dataflow()
        inp = df.input()
        probe = inp.stream.flat_map(
            lambda r: [(r[0], i) for i in range(r[1])]
        ).probe()
        inp.send_records([("a", 2)])
        df.run()
        assert probe.state() == {("a", 0): 1, ("a", 1): 1}

    def test_negate_concat_cancel(self):
        df = Dataflow()
        inp = df.input()
        probe = inp.stream.concat(inp.stream.negate()).probe()
        inp.send_records([("a", 1)])
        df.run()
        assert probe.state() == {}

    def test_inspect_passthrough(self):
        df = Dataflow()
        inp = df.input()
        seen = []
        probe = inp.stream.inspect(
            lambda time, diffs: seen.append((time, list(diffs)))
        ).probe()
        inp.send_records([("a", 1)])
        df.run()
        assert probe.state() == {("a", 1): 1}
        assert len(seen) == 1


class TestJoin:
    def test_join_and_retraction(self):
        df = Dataflow()
        left = df.input()
        right = df.input()
        probe = left.stream.join(right.stream).probe()
        left.send_records([("k", 1)])
        right.send_records([("k", "x")])
        df.run()
        assert probe.state() == {("k", (1, "x")): 1}

        df.advance_epoch()
        left.send([(("k", 1), -1), (("k", 2), 1)])
        df.run()
        assert probe.state() == {("k", (2, "x")): 1}

    def test_same_time_both_sides(self):
        df = Dataflow()
        left = df.input()
        right = df.input()
        probe = left.stream.join(right.stream).probe()
        left.send_records([("k", "l")])
        right.send_records([("k", "r")])
        df.run()
        # dA⋈B + A⋈dB + dA⋈dB must count the cross term exactly once.
        assert probe.state() == {("k", ("l", "r")): 1}


class TestReduce:
    def test_sum_by_key_with_corrections(self):
        df = Dataflow()
        inp = df.input()
        probe = inp.stream.sum_by_key().probe()
        inp.send_records([("k", 2.0), ("k", 3.0), ("j", 1.0)])
        df.run()
        assert probe.state() == {("k", 5.0): 1, ("j", 1.0): 1}

        df.advance_epoch()
        inp.send([(("k", 2.0), -1)])
        df.run()
        assert probe.state() == {("k", 3.0): 1, ("j", 1.0): 1}

    def test_group_disappears_when_empty(self):
        df = Dataflow()
        inp = df.input()
        probe = inp.stream.sum_by_key().probe()
        inp.send_records([("k", 1.0)])
        df.run()
        df.advance_epoch()
        inp.send([(("k", 1.0), -1)])
        df.run()
        assert probe.state() == {}

    def test_min_by_key(self):
        df = Dataflow()
        inp = df.input()
        probe = inp.stream.min_by_key().probe()
        inp.send_records([("k", 5.0), ("k", 2.0)])
        df.run()
        assert probe.state() == {("k", 2.0): 1}
        # Retracting the minimum re-exposes the runner-up.
        df.advance_epoch()
        inp.send([(("k", 2.0), -1)])
        df.run()
        assert probe.state() == {("k", 5.0): 1}

    def test_count_and_distinct(self):
        df = Dataflow()
        inp = df.input()
        count_probe = inp.stream.count().probe()
        distinct_probe = inp.stream.distinct().probe()
        inp.send([(("k", "a"), 2), (("k", "b"), 1)])
        df.run()
        assert count_probe.state() == {("k", 3): 1}
        assert distinct_probe.state() == {("k", "a"): 1, ("k", "b"): 1}

    def test_negative_multiset_rejected(self):
        df = Dataflow()
        inp = df.input()
        inp.stream.sum_by_key().probe()
        inp.send([(("k", 1.0), -1)])
        with pytest.raises(ValueError):
            df.run()


class TestProbeFeedbackView:
    def test_changes_since_last_call(self):
        df = Dataflow()
        inp = df.input()
        probe = inp.stream.probe()
        inp.send_records([("a", 1)])
        df.run()
        first = dict(probe.changes_since_last_call())
        assert first == {("a", 1): 1}
        assert probe.changes_since_last_call() == []

    def test_records_processed_counter(self):
        df = Dataflow()
        inp = df.input()
        inp.stream.map(lambda r: r).probe()
        inp.send_records([("a", 1), ("b", 1)])
        df.run()
        assert df.records_processed >= 4  # input + map + probe


record_strategy = st.tuples(st.integers(0, 3), st.integers(0, 4))
diff_strategy = st.tuples(record_strategy, st.integers(-2, 2))


class TestDifferentialContract:
    @given(st.lists(st.lists(diff_strategy, max_size=6), max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_streaming_map_filter_equals_batch(self, epochs):
        df = Dataflow()
        inp = df.input()
        probe = (
            inp.stream
            .map(lambda r: (r[0], r[1] + 1))
            .filter(lambda r: r[1] % 2 == 0)
            .probe()
        )
        everything = []
        for batch in epochs:
            inp.send(batch)
            df.run()
            df.advance_epoch()
            everything.extend(batch)
        expected = (
            Collection(everything)
            .map(lambda r: (r[0], r[1] + 1))
            .filter(lambda r: r[1] % 2 == 0)
        )
        assert accumulate(probe) == expected

    @given(
        st.lists(st.lists(diff_strategy, max_size=5), min_size=1,
                 max_size=3),
        st.lists(st.lists(diff_strategy, max_size=5), min_size=1,
                 max_size=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_streaming_join_equals_batch(self, left_epochs, right_epochs):
        df = Dataflow()
        left = df.input()
        right = df.input()
        probe = left.stream.join(right.stream).probe()
        left_all, right_all = [], []
        for i in range(max(len(left_epochs), len(right_epochs))):
            if i < len(left_epochs):
                left.send(left_epochs[i])
                left_all.extend(left_epochs[i])
            if i < len(right_epochs):
                right.send(right_epochs[i])
                right_all.extend(right_epochs[i])
            df.run()
            df.advance_epoch()
        expected = Collection(left_all).join(Collection(right_all))
        assert accumulate(probe) == expected

    @given(
        st.lists(
            st.lists(st.tuples(record_strategy, st.integers(0, 2)),
                     max_size=6),
            max_size=4,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_streaming_reduce_equals_batch(self, epochs):
        # Reduce requires positive collections; feed additions and
        # retract a random prefix later via negations of earlier diffs.
        df = Dataflow()
        inp = df.input()
        probe = inp.stream.sum_by_key().probe()
        everything = []
        for batch in epochs:
            inp.send(batch)
            df.run()
            df.advance_epoch()
            everything.extend(batch)
        collected = Collection(everything)
        expected = collected.reduce(lambda key, values: [sum(values)])
        assert accumulate(probe) == expected
