"""Stress tests at the extremes of the mutation space.

Failure-injection style coverage: batches that delete every edge, that
rebuild the graph from nothing, that dwarf the graph itself, and value
regimes (tiny/huge weights) that expose numerical fragility in
incremental retraction.
"""

import numpy as np
import pytest

from repro.algorithms import (
    BeliefPropagation,
    LabelPropagation,
    PageRank,
    SSSP,
)
from repro.core.engine import GraphBoltEngine
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat
from repro.graph.mutation import MutationBatch
from repro.ligra.engine import LigraEngine


def check_exact(engine, factory, iterations, tolerance=1e-6):
    truth = LigraEngine(factory()).run(engine.graph, iterations)
    actual = engine.values
    filled_a = np.where(np.isinf(actual), -1.0, actual)
    filled_t = np.where(np.isinf(truth), -1.0, truth)
    diff = np.abs(filled_a - filled_t)
    while diff.ndim > 1:
        diff = diff.max(axis=-1)
    assert diff.max() <= tolerance


@pytest.fixture
def graph():
    return rmat(scale=7, edge_factor=5, seed=100, weighted=True)


class TestTotalDestruction:
    def test_delete_every_edge(self, graph):
        engine = GraphBoltEngine(PageRank(), num_iterations=8)
        engine.run(graph)
        src, dst, _ = graph.all_edges()
        everything = MutationBatch.from_edges(
            deletions=list(zip(src.tolist(), dst.tolist()))
        )
        values = engine.apply_mutations(everything)
        assert engine.graph.num_edges == 0
        assert np.allclose(values, 0.15)
        check_exact(engine, lambda: PageRank(), 8)

    def test_rebuild_after_destruction(self, graph):
        engine = GraphBoltEngine(LabelPropagation(num_labels=3),
                                 num_iterations=8)
        engine.run(graph)
        src, dst, weight = graph.all_edges()
        engine.apply_mutations(MutationBatch.from_edges(
            deletions=list(zip(src.tolist(), dst.tolist()))
        ))
        engine.apply_mutations(MutationBatch.from_edges(
            additions=list(zip(src.tolist(), dst.tolist())),
            add_weights=weight.tolist(),
        ))
        assert engine.graph.edge_set() == graph.edge_set()
        check_exact(engine, lambda: LabelPropagation(num_labels=3), 8)

    def test_start_from_empty_graph(self):
        empty = CSRGraph.from_edges([], num_vertices=50)
        engine = GraphBoltEngine(PageRank(), num_iterations=6)
        engine.run(empty)
        rng = np.random.default_rng(5)
        additions = [
            (int(rng.integers(0, 50)), int(rng.integers(0, 50)))
            for _ in range(120)
        ]
        additions = [(u, v) for u, v in additions if u != v]
        engine.apply_mutations(MutationBatch.from_edges(additions))
        check_exact(engine, lambda: PageRank(), 6)


class TestBatchDwarfsGraph:
    def test_batch_larger_than_graph(self, graph):
        engine = GraphBoltEngine(LabelPropagation(num_labels=3),
                                 num_iterations=8)
        engine.run(graph)
        rng = np.random.default_rng(6)
        num_vertices = graph.num_vertices
        additions = {
            (int(rng.integers(0, num_vertices)),
             int(rng.integers(0, num_vertices)))
            for _ in range(graph.num_edges * 2)
        }
        additions = [(u, v) for u, v in additions if u != v]
        engine.apply_mutations(MutationBatch.from_edges(additions))
        check_exact(engine, lambda: LabelPropagation(num_labels=3), 8)


class TestWeightExtremes:
    def test_tiny_and_huge_weights(self, graph):
        engine = GraphBoltEngine(LabelPropagation(num_labels=3),
                                 num_iterations=8)
        engine.run(graph)
        src, dst, _ = graph.all_edges()
        replace = [(int(src[i]), int(dst[i])) for i in range(10)]
        weights = [1e-12, 1e12] * 5
        engine.apply_mutations(MutationBatch.from_edges(
            additions=replace, deletions=replace, add_weights=weights,
        ))
        assert np.isfinite(engine.values).all()
        check_exact(engine, lambda: LabelPropagation(num_labels=3), 8,
                    tolerance=1e-5)

    def test_bp_survives_weight_extremes(self, graph):
        # BP's contributions ignore weights, but degree churn from the
        # same batch exercises the log-product retraction path.
        engine = GraphBoltEngine(BeliefPropagation(num_states=2),
                                 num_iterations=8)
        engine.run(graph)
        rng = np.random.default_rng(7)
        src, dst, _ = graph.all_edges()
        idx = rng.choice(src.size, size=40, replace=False)
        engine.apply_mutations(MutationBatch.from_edges(
            additions=[(int(rng.integers(0, 128)),
                        int(rng.integers(0, 128))) for _ in range(40)],
            deletions=[(int(src[i]), int(dst[i])) for i in idx],
        ))
        assert np.isfinite(engine.values).all()
        check_exact(engine, lambda: BeliefPropagation(num_states=2), 8,
                    tolerance=1e-6)


class TestDisconnection:
    def test_source_isolation_makes_everything_unreachable(self):
        graph = CSRGraph.from_edges(
            [(0, 1), (1, 2), (2, 3)], num_vertices=4
        )
        engine = GraphBoltEngine(SSSP(source=0), until_convergence=True)
        engine.run(graph)
        assert engine.values.tolist() == [0.0, 1.0, 2.0, 3.0]
        engine.apply_mutations(MutationBatch.from_edges(
            deletions=[(0, 1)]
        ))
        assert engine.values[0] == 0.0
        assert np.isinf(engine.values[1:]).all()
