"""Property: coalescing a batch sequence preserves stream semantics.

For any base graph and any sequence of mutation batches, applying the
batches one by one must produce the same final graph as applying the
single coalesced batch -- including the stream semantics that re-adding
a present edge is skipped and deleting an absent edge is skipped.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.mutable import StreamingGraph
from repro.graph.mutation import MutationBatch
from repro.graph.stream import coalesce_batches


@st.composite
def batch_sequence(draw):
    num_vertices = draw(st.integers(2, 8))

    def edge():
        return st.tuples(
            st.integers(0, num_vertices - 1),
            st.integers(0, num_vertices - 1),
        ).filter(lambda e: e[0] != e[1])

    base = draw(st.lists(edge(), max_size=15))
    batches = draw(
        st.lists(
            st.tuples(
                st.lists(
                    st.tuples(edge(),
                              st.floats(0.5, 4.0, allow_nan=False)),
                    max_size=5,
                ),
                st.lists(edge(), max_size=5),
            ),
            min_size=1,
            max_size=5,
        )
    )
    return num_vertices, sorted(set(base)), batches


def weighted_edge_map(graph):
    src, dst, weight = graph.all_edges()
    return dict(zip(zip(src.tolist(), dst.tolist()), weight.tolist()))


class TestCoalesceEquivalence:
    @given(batch_sequence())
    @settings(max_examples=120, deadline=None)
    def test_sequential_equals_coalesced(self, data):
        num_vertices, base, raw_batches = data
        batches = [
            MutationBatch.from_edges(
                additions=[edge for edge, _ in additions],
                deletions=deletions,
                add_weights=[weight for _, weight in additions],
            )
            for additions, deletions in raw_batches
        ]

        sequential = StreamingGraph(
            CSRGraph.from_edges(base, num_vertices=num_vertices)
        )
        for batch in batches:
            sequential.apply_batch(batch)

        merged = coalesce_batches(batches)
        coalesced = StreamingGraph(
            CSRGraph.from_edges(base, num_vertices=num_vertices)
        )
        coalesced.apply_batch(merged)

        assert weighted_edge_map(sequential.graph) == (
            weighted_edge_map(coalesced.graph)
        )
