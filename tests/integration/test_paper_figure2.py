"""The paper's Figure 2 scenario on its exact 5-vertex graph.

Figure 2 shows a 5-vertex streaming graph G mutating to G^T by adding
edge (1, 2), and demonstrates for Label Propagation that:

- from-scratch results on G^T differ from results on G;
- *naively* continuing from G's results converges to values that are
  close to G's results and wrong for G^T (highlighted red in the paper);
- GraphBolt's dependency-driven refinement produces exactly the
  from-scratch values for G^T.
"""

import numpy as np
import pytest

from repro.algorithms import LabelPropagation
from repro.core.engine import GraphBoltEngine
from repro.graph.csr import CSRGraph
from repro.graph.mutation import MutationBatch
from repro.ligra.engine import LigraEngine

#: Figure 2a: G, with 5 vertices.  Edges read off the figure's arrows
#: (2 -> 0, 0 -> 1, 2 -> 1, 1 -> 2 absent in G, 3 -> 2, 3 -> 4, 4 -> 3
#: and 2's self-dependencies via its neighbours).
G_EDGES = [(2, 0), (0, 1), (2, 1), (3, 2), (3, 4), (4, 3)]
#: Figure 2b: G^T = G plus the new edge (1, 2).
NEW_EDGE = (1, 2)
ITERATIONS = 10


@pytest.fixture
def algorithm_factory():
    return lambda: LabelPropagation(num_labels=2, seed_every=3, salt=0)


def graph_before():
    return CSRGraph.from_edges(G_EDGES, num_vertices=5)


def graph_after():
    return CSRGraph.from_edges(G_EDGES + [NEW_EDGE], num_vertices=5)


class TestFigure2:
    def test_mutation_changes_results(self, algorithm_factory):
        before = LigraEngine(algorithm_factory()).run(graph_before(),
                                                      ITERATIONS)
        after = LigraEngine(algorithm_factory()).run(graph_after(),
                                                     ITERATIONS)
        assert not np.allclose(before, after)

    def test_naive_reuse_is_incorrect(self, algorithm_factory):
        engine = GraphBoltEngine(algorithm_factory(),
                                 num_iterations=ITERATIONS,
                                 strategy="naive")
        engine.run(graph_before())
        naive = engine.apply_mutations(
            MutationBatch.from_edges(additions=[NEW_EDGE])
        )
        truth = LigraEngine(algorithm_factory()).run(graph_after(),
                                                     ITERATIONS)
        assert not np.allclose(naive, truth, atol=1e-6)

    def test_refinement_is_correct(self, algorithm_factory):
        engine = GraphBoltEngine(algorithm_factory(),
                                 num_iterations=ITERATIONS)
        engine.run(graph_before())
        refined = engine.apply_mutations(
            MutationBatch.from_edges(additions=[NEW_EDGE])
        )
        truth = LigraEngine(algorithm_factory()).run(graph_after(),
                                                     ITERATIONS)
        assert np.allclose(refined, truth, atol=1e-9)

    def test_refinement_reuses_unaffected_work(self, algorithm_factory):
        engine = GraphBoltEngine(algorithm_factory(),
                                 num_iterations=ITERATIONS,
                                 dense_refine_fraction=2.0)
        engine.run(graph_before())
        before = engine.metrics.snapshot()
        engine.apply_mutations(
            MutationBatch.from_edges(additions=[NEW_EDGE])
        )
        delta = engine.metrics.delta_since(before)
        # Fewer edge computations than reprocessing the whole graph for
        # all iterations (the figure's point: refinement touches far
        # fewer dependency edges than Figure 3b's full dependence graph).
        full_work = graph_after().num_edges * ITERATIONS
        assert delta.edge_computations < full_work
