"""End-to-end integration: long streams through every engine at once.

Simulates the paper's full pipeline -- load 50% of a graph, stream the
rest mixed with deletions (section 5.1) -- and checks that Ligra,
GB-Reset, GraphBolt (with and without pruning) and, for SSSP,
KickStarter and the mini-DD agree on every intermediate snapshot.
"""

import numpy as np
import pytest

from repro.algorithms import LabelPropagation, PageRank, SSSP
from repro.bench.harness import (
    DeltaRunner,
    GraphBoltRunner,
    LigraRunner,
    run_stream,
)
from repro.bench.workloads import mixed_stream
from repro.core.pruning import PruningPolicy
from repro.dataflow.graph_programs import DifferentialSSSP
from repro.graph.generators import rmat
from repro.graph.stream import MutationStream
from repro.kickstarter.engine import KickStarterEngine
from repro.ligra.engine import LigraEngine


class TestPaperMethodologyStream:
    def test_all_engines_agree_across_stream(self):
        full = rmat(scale=8, edge_factor=6, seed=50, weighted=True)
        initial, batches = mixed_stream(full, num_batches=6,
                                        batch_size=30, seed=50)
        runners = [
            LigraRunner(lambda: PageRank(), 10),
            DeltaRunner(lambda: PageRank(), 10),
            GraphBoltRunner(lambda: PageRank(), 10),
            GraphBoltRunner(lambda: PageRank(), 10,
                            pruning=PruningPolicy(horizon=4)),
        ]
        for runner in runners:
            runner.setup(initial)
        for batch in batches:
            values = [runner.apply(batch) for runner in runners]
            for other in values[1:]:
                assert np.allclose(values[0], other, atol=1e-7)

    def test_final_graph_is_the_full_graph_when_no_deletions(self):
        full = rmat(scale=7, edge_factor=4, seed=51, weighted=True)
        initial, batches = mixed_stream(full, num_batches=100,
                                        batch_size=100,
                                        delete_fraction=0.0, seed=51)
        runner = GraphBoltRunner(lambda: PageRank(), 5)
        runner.setup(initial)
        for batch in batches:
            runner.apply(batch)
        assert runner.graph.edge_set() == full.edge_set()


class TestSSSPAcrossAllEngines:
    def test_four_way_agreement(self):
        graph = rmat(scale=7, edge_factor=4, seed=52, weighted=True)
        initial, batches = mixed_stream(graph, num_batches=4,
                                        batch_size=20, seed=52)
        kick = KickStarterEngine(initial, source=0)
        bolt = GraphBoltRunner(lambda: SSSP(source=0),
                               until_convergence=True)
        bolt.setup(initial)
        dd = DifferentialSSSP(initial, source=0, num_stages=30)
        for batch in batches:
            kick_values = kick.apply_mutations(batch)
            bolt_values = bolt.apply(batch)
            dd_values = dd.apply_mutations(batch)
            truth = LigraEngine(SSSP(source=0)).run(
                kick.graph, until_convergence=True
            )
            for values in (kick_values, bolt_values, dd_values):
                both_inf = np.isinf(values) & np.isinf(truth)
                assert np.allclose(values[~both_inf], truth[~both_inf])
                assert np.array_equal(np.isinf(values), np.isinf(truth))


class TestBufferedStreamConsumption:
    def test_engine_drains_buffered_stream(self):
        graph = rmat(scale=7, edge_factor=4, seed=53, weighted=True)
        _, batches = mixed_stream(graph, num_batches=5, batch_size=10,
                                  seed=53)
        stream = MutationStream(batches)
        runner = GraphBoltRunner(lambda: LabelPropagation(num_labels=3), 8)
        runner.setup(graph)
        processed = 0
        while stream:
            # The refinement window buffers arrivals (paper section 4.1).
            stream.begin_refinement()
            assert stream.take() is None
            stream.end_refinement()
            batch = stream.take()
            runner.apply(batch)
            processed += 1
        assert processed == 5
        truth = LigraEngine(LabelPropagation(num_labels=3)).run(
            runner.graph, 8
        )
        assert np.allclose(runner.engine.values, truth, atol=1e-7)

    def test_coalesced_catchup_matches_one_by_one(self):
        graph = rmat(scale=7, edge_factor=4, seed=54, weighted=True)
        _, batches = mixed_stream(graph, num_batches=4, batch_size=15,
                                  seed=54)

        one_by_one = GraphBoltRunner(lambda: PageRank(), 8)
        one_by_one.setup(graph)
        for batch in batches:
            one_by_one.apply(batch)

        coalesced = GraphBoltRunner(lambda: PageRank(), 8)
        coalesced.setup(graph)
        stream = MutationStream(batches)
        merged = stream.take_all()
        coalesced.apply(merged)

        assert coalesced.graph.edge_set() == one_by_one.graph.edge_set()
        assert np.allclose(coalesced.engine.values,
                           one_by_one.engine.values, atol=1e-7)
