"""Long-stream soak test: 20 batches, every engine family at once.

The most end-to-end check in the suite: a single mutation stream driven
simultaneously through GraphBolt (CSR and dynamic backends, pruned and
unpruned, delta and RP modes) with per-batch cross-validation, finishing
with a checkpoint/restore and continued processing.
"""

import numpy as np
import pytest

from repro.algorithms import LabelPropagation
from repro.core.engine import GraphBoltEngine
from repro.core.pruning import PruningPolicy
from repro.graph.dynamic import DynamicStreamingGraph
from repro.graph.generators import rmat
from repro.ligra.engine import LigraEngine
from repro.runtime.checkpoint import load_engine, save_engine
from tests.conftest import make_random_batch

ITERATIONS = 8


def factory():
    return LabelPropagation(num_labels=3, seed_every=4)


@pytest.mark.parametrize("label,kwargs", [
    ("plain", {}),
    ("pruned", {"pruning": PruningPolicy(horizon=3)}),
    ("rp", {"mode": "retract_propagate"}),
    ("dynamic", {"streaming_factory": DynamicStreamingGraph}),
    ("adaptive", {"pruning": PruningPolicy(adaptive_fraction=0.3)}),
])
def test_twenty_batch_soak(label, kwargs, rng):
    graph = rmat(scale=7, edge_factor=5, seed=110, weighted=True)
    engine = GraphBoltEngine(factory(), num_iterations=ITERATIONS,
                             **kwargs)
    engine.run(graph)
    for index in range(20):
        batch = make_random_batch(engine.graph, rng, 8, 8)
        values = engine.apply_mutations(batch)
        if index % 5 == 4:
            snapshot = engine.graph
            if hasattr(snapshot, "to_csr"):
                snapshot = snapshot.to_csr()
            truth = LigraEngine(factory()).run(snapshot, ITERATIONS)
            assert np.allclose(values, truth, atol=1e-6), (label, index)


def test_soak_with_mid_stream_checkpoint(tmp_path, rng):
    graph = rmat(scale=7, edge_factor=5, seed=111, weighted=True)
    engine = GraphBoltEngine(factory(), num_iterations=ITERATIONS)
    engine.run(graph)
    for _ in range(10):
        engine.apply_mutations(make_random_batch(engine.graph, rng, 8, 8))

    path = str(tmp_path / "soak.npz")
    save_engine(engine, path)
    restored = load_engine(path, factory())

    for _ in range(10):
        batch = make_random_batch(engine.graph, rng, 8, 8)
        original = engine.apply_mutations(batch)
        resumed = restored.apply_mutations(batch)
        assert np.array_equal(original, resumed)
    truth = LigraEngine(factory()).run(engine.graph, ITERATIONS)
    assert np.allclose(engine.values, truth, atol=1e-6)
