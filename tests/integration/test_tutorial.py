"""The tutorial's Exposure walkthrough, executed.

docs/tutorial.md builds a custom algorithm step by step; this test runs
the same code so the documentation cannot rot.
"""

import numpy as np

from repro import (
    DeltaEngine,
    GraphBoltEngine,
    IncrementalAlgorithm,
    LigraEngine,
    MutationBatch,
    PruningPolicy,
    SlidingWindowStream,
    SumAggregation,
    rmat,
)
from repro.runtime.checkpoint import load_engine, save_engine
from repro.serving import StreamingAnalyticsServer


class Exposure(IncrementalAlgorithm):
    """The tutorial's exposure score (docs/tutorial.md step 2)."""

    name = "exposure"
    value_shape = ()

    def __init__(self, reviewed, tolerance=1e-9):
        super().__init__(SumAggregation(), tolerance)
        self.reviewed = dict(reviewed)

    def _clamp(self, vertices, scores):
        out = scores.copy()
        for i, v in enumerate(vertices.tolist()):
            if v in self.reviewed:
                out[i] = self.reviewed[v]
        return out

    def initial_values(self, graph):
        ids = np.arange(graph.num_vertices)
        return self._clamp(ids, np.full(graph.num_vertices, 0.5))

    def contributions(self, graph, src_values, src, dst, weight):
        return src_values * weight

    def apply(self, graph, aggregate_values, vertices,
              previous_values=None):
        denom = graph.in_weight_sums()[vertices]
        safe = denom > 1e-9
        scores = np.where(
            safe, aggregate_values / np.where(safe, denom, 1.0), 0.5
        )
        return self._clamp(vertices, scores)

    def apply_params_changed(self, mutation):
        return mutation.in_changed_vertices()


REVIEWED = {3: 1.0, 17: 0.0}


def factory():
    return Exposure(REVIEWED)


class TestTutorialSteps:
    def setup_method(self):
        self.graph = rmat(scale=9, edge_factor=6, seed=7, weighted=True)

    def test_step3_decomposition_checks(self):
        full = LigraEngine(factory()).run(self.graph, 10)
        delta = DeltaEngine(factory()).run(self.graph, 10)
        assert np.allclose(full, delta, atol=1e-8)

        engine = GraphBoltEngine(factory(), num_iterations=10)
        engine.run(self.graph)
        batch = MutationBatch.from_edges(additions=[(5, 3)],
                                         deletions=[(0, 1)])
        refined = engine.apply_mutations(batch)
        truth = LigraEngine(factory()).run(engine.graph, 10)
        assert np.allclose(refined, truth, atol=1e-7)

    def test_step4_windowed_stream(self):
        engine = GraphBoltEngine(factory(), num_iterations=8)
        engine.run(self.graph)
        window = SlidingWindowStream(window=3)
        rng = np.random.default_rng(1)
        for _ in range(5):
            events = [
                (int(rng.integers(0, 512)), int(rng.integers(0, 512)))
                for _ in range(10)
            ]
            amounts = (rng.random(len(events)) + 0.5).tolist()
            batch = window.advance(
                [e for e in events if e[0] != e[1]],
                weights=amounts[: len([e for e in events
                                       if e[0] != e[1]])],
            )
            scores = engine.apply_mutations(batch)
        truth = LigraEngine(factory()).run(engine.graph, 8)
        assert np.allclose(scores, truth, atol=1e-8)

    def test_step5_pruned_engine_still_exact(self):
        engine = GraphBoltEngine(factory(), num_iterations=10,
                                 pruning=PruningPolicy(horizon=5))
        engine.run(self.graph)
        engine.apply_mutations(
            MutationBatch.from_edges(additions=[(9, 3), (2, 17)])
        )
        truth = LigraEngine(factory()).run(engine.graph, 10)
        assert np.allclose(engine.values, truth, atol=1e-7)
        assert engine.memory_report().dependency_bytes > 0

    def test_step6_serving(self):
        server = StreamingAnalyticsServer(factory, self.graph,
                                          approx_iterations=3,
                                          exact_iterations=10)
        server.ingest(MutationBatch.from_edges(additions=[(4, 3)]))
        exact = server.query()
        truth = LigraEngine(factory()).run(server.graph, 10)
        assert np.allclose(exact.values, truth, atol=1e-7)

    def test_step7_checkpoint(self, tmp_path):
        engine = GraphBoltEngine(factory(), num_iterations=8)
        engine.run(self.graph)
        path = str(tmp_path / "exposure.ckpt.npz")
        save_engine(engine, path)
        restored = load_engine(path, factory())
        assert np.array_equal(restored.values, engine.values)
