"""Property-based verification of Theorem 4.1.

Hypothesis drives random graphs, random mutation streams (including
vertex growth and weight replacement) and random pruning horizons
through GraphBolt for three representative algorithm classes, asserting
refinement-equals-from-scratch at every step.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import LabelPropagation, PageRank, SSSP
from repro.core.engine import GraphBoltEngine
from repro.core.pruning import PruningPolicy
from repro.graph.csr import CSRGraph
from repro.graph.mutation import MutationBatch
from repro.ligra.engine import LigraEngine


@st.composite
def scenario(draw):
    num_vertices = draw(st.integers(3, 14))

    def edge():
        return st.tuples(
            st.integers(0, num_vertices - 1),
            st.integers(0, num_vertices - 1),
        ).filter(lambda e: e[0] != e[1])

    edges = draw(st.lists(edge(), max_size=30))
    weights = draw(
        st.lists(
            st.floats(0.1, 5.0, allow_nan=False),
            min_size=len(set(edges)),
            max_size=len(set(edges)),
        )
    )
    batches = []
    for _ in range(draw(st.integers(1, 3))):
        additions = draw(st.lists(edge(), max_size=6))
        deletions = draw(st.lists(edge(), max_size=6))
        add_weights = draw(
            st.lists(
                st.floats(0.1, 5.0, allow_nan=False),
                min_size=len(additions), max_size=len(additions),
            )
        )
        grow = draw(st.booleans())
        batches.append(
            MutationBatch.from_edges(
                additions=additions, deletions=deletions,
                add_weights=add_weights,
                grow_to=num_vertices + 2 if grow else None,
            )
        )
    horizon = draw(st.one_of(st.none(), st.integers(0, 8)))
    return num_vertices, sorted(set(edges)), weights, batches, horizon


def run_and_check(algorithm_factory, data, iterations, tolerance=1e-6):
    num_vertices, edges, weights, batches, horizon = data
    graph = CSRGraph.from_edges(edges, num_vertices=num_vertices,
                                weights=weights)
    pruning = (
        PruningPolicy(horizon=horizon) if horizon is not None
        else PruningPolicy.track_everything()
    )
    engine = GraphBoltEngine(algorithm_factory(), num_iterations=iterations,
                             pruning=pruning)
    engine.run(graph)
    for batch in batches:
        values = engine.apply_mutations(batch)
        truth = LigraEngine(algorithm_factory()).run(engine.graph,
                                                     iterations)
        filled = np.where(np.isinf(values), -1.0, values)
        filled_truth = np.where(np.isinf(truth), -1.0, truth)
        diff = np.abs(filled - filled_truth)
        while diff.ndim > 1:
            diff = diff.max(axis=-1)
        assert diff.max() <= tolerance, (
            f"diverged by {diff.max()} at vertex {int(diff.argmax())}"
        )


class TestTheorem41:
    @given(scenario())
    @settings(max_examples=50, deadline=None)
    def test_pagerank(self, data):
        run_and_check(lambda: PageRank(), data, iterations=8)

    @given(scenario())
    @settings(max_examples=50, deadline=None)
    def test_label_propagation(self, data):
        run_and_check(
            lambda: LabelPropagation(num_labels=3), data, iterations=8
        )

    @given(scenario())
    @settings(max_examples=50, deadline=None)
    def test_sssp(self, data):
        run_and_check(lambda: SSSP(source=0), data, iterations=30)


class TestTheorem41DynamicBackend:
    """The invariant must hold identically on the STINGER-style
    structure, whose refinement sees FrozenGraphParams instead of a
    retained old snapshot."""

    @given(scenario())
    @settings(max_examples=40, deadline=None)
    def test_pagerank_on_dynamic_structure(self, data):
        from repro.graph.dynamic import DynamicStreamingGraph

        num_vertices, edges, weights, batches, horizon = data
        graph = CSRGraph.from_edges(edges, num_vertices=num_vertices,
                                    weights=weights)
        pruning = (
            PruningPolicy(horizon=horizon) if horizon is not None
            else PruningPolicy.track_everything()
        )
        engine = GraphBoltEngine(
            PageRank(), num_iterations=8, pruning=pruning,
            streaming_factory=DynamicStreamingGraph,
        )
        engine.run(graph)
        for batch in batches:
            values = engine.apply_mutations(batch)
            truth = LigraEngine(PageRank()).run(engine.graph.to_csr(), 8)
            assert np.abs(values - truth).max() <= 1e-6


class TestTheorem41MoreAlgorithmClasses:
    """Extend the property net to the remaining algebra corners:
    apply-parameter algorithms (CoEM), log-product aggregation (BP),
    and the bare-sum recurrence (Katz)."""

    @given(scenario())
    @settings(max_examples=40, deadline=None)
    def test_coem(self, data):
        from repro.algorithms import CoEM

        run_and_check(lambda: CoEM(), data, iterations=8)

    @given(scenario())
    @settings(max_examples=40, deadline=None)
    def test_belief_propagation(self, data):
        from repro.algorithms import BeliefPropagation

        run_and_check(
            lambda: BeliefPropagation(num_states=2), data, iterations=8,
            tolerance=1e-5,
        )

    @given(scenario())
    @settings(max_examples=40, deadline=None)
    def test_katz(self, data):
        from repro.algorithms import KatzCentrality

        run_and_check(
            lambda: KatzCentrality(alpha=0.05), data, iterations=8
        )
