"""Unit tests for deterministic workload generation."""

import numpy as np
import pytest

from repro.graph.mutation import MutationBatch
from repro.testing.workloads import (
    BATCH_KINDS,
    FUZZ_ALGORITHMS,
    Workload,
    generate_workload,
)


class TestDeterminism:
    def test_same_seed_same_workload(self):
        first = generate_workload(42)
        second = generate_workload(42)
        assert first.algorithm == second.algorithm
        assert first.num_vertices == second.num_vertices
        assert first.edges == second.edges
        assert first.kinds == second.kinds
        assert len(first.schedule) == len(second.schedule)
        for a, b in zip(first.schedule, second.schedule):
            assert list(a.additions()) == list(b.additions())
            assert list(a.deletions()) == list(b.deletions())
            assert a.grow_to == b.grow_to

    def test_different_seeds_differ(self):
        workloads = [generate_workload(seed) for seed in range(10)]
        signatures = {
            (w.algorithm, w.num_vertices, len(w.edges)) for w in workloads
        }
        assert len(signatures) > 1


class TestGeneration:
    def test_graph_builds_and_matches_counts(self):
        workload = generate_workload(7)
        graph = workload.build_graph()
        assert graph.num_vertices == workload.num_vertices
        assert graph.num_edges == len(workload.edges)

    def test_roster_restriction(self):
        workload = generate_workload(3, algorithms=["pagerank"])
        assert workload.algorithm == "pagerank"

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown fuzz algorithms"):
            generate_workload(0, algorithms=["page-rank-typo"])

    def test_all_kinds_reachable(self):
        seen = set()
        for seed in range(120):
            seen.update(generate_workload(seed).kinds)
        expected = set(BATCH_KINDS) | {"churn_insert", "churn_delete"}
        assert expected <= seen

    def test_churn_delete_follows_insert(self):
        for seed in range(120):
            workload = generate_workload(seed)
            for index, kind in enumerate(workload.kinds):
                if kind != "churn_delete":
                    continue
                assert workload.kinds[index - 1] == "churn_insert"
                inserted = {
                    (u, v) for u, v, _ in
                    workload.schedule[index - 1].additions()
                }
                deleted = set(workload.schedule[index].deletions())
                assert deleted == inserted

    def test_monotonic_and_vector_profiles_present(self):
        profiles = FUZZ_ALGORITHMS.values()
        assert any(p.monotonic for p in profiles)
        assert any(p.vector for p in profiles)
        assert len(FUZZ_ALGORITHMS) >= 3

    def test_weights_are_finite_and_positive(self):
        for seed in range(30):
            workload = generate_workload(seed)
            for _, _, weight in workload.edges:
                assert np.isfinite(weight) and weight > 0
            for batch in workload.schedule:
                for _, _, weight in batch.additions():
                    assert np.isfinite(weight) and weight > 0


class TestWorkloadHelpers:
    def test_with_schedule_truncates_kinds(self):
        workload = generate_workload(11)
        truncated = workload.with_schedule(workload.schedule[:1])
        assert len(truncated.schedule) == 1
        assert truncated.kinds == workload.kinds[:1]
        # The original is untouched (shrinker relies on this).
        assert len(workload.schedule) >= 1

    def test_total_mutations(self):
        workload = Workload(
            seed=0, algorithm="pagerank", num_vertices=3,
            edges=[(0, 1, 1.0)],
            schedule=[
                MutationBatch.from_edges(additions=[(1, 2)]),
                MutationBatch.from_edges(deletions=[(0, 1)]),
            ],
        )
        assert workload.total_mutations() == 2
