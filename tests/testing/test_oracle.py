"""Unit tests for the cross-engine equivalence oracle."""

import numpy as np
import pytest

from repro.graph.mutation import MutationBatch
from repro.testing.oracle import check_workload, compare_snapshots
from repro.testing.runners import available_engines, build_runner
from repro.testing.workloads import (
    FUZZ_ALGORITHMS,
    Workload,
    generate_workload,
)


class TestCompareSnapshots:
    def test_equal_within_tolerance(self):
        assert compare_snapshots([1.0, 2.0], [1.0, 2.0 + 1e-9],
                                 tolerance=1e-6) is None

    def test_value_divergence_reports_vertex(self):
        kind, detail, max_error = compare_snapshots(
            [1.0, 3.0], [1.0, 2.0], tolerance=1e-6
        )
        assert kind == "values"
        assert "vertex 1" in detail
        assert max_error == pytest.approx(0.5)

    def test_matching_infinities_agree(self):
        assert compare_snapshots(
            [0.0, np.inf], [0.0, np.inf], tolerance=1e-9
        ) is None

    def test_mismatched_infinity_diverges(self):
        kind, detail, _ = compare_snapshots(
            [0.0, 5.0], [0.0, np.inf], tolerance=1e-9
        )
        assert kind == "finite-mask"
        assert "vertex 1" in detail

    def test_shape_mismatch(self):
        kind, _, _ = compare_snapshots(
            np.zeros(3), np.zeros(4), tolerance=1e-9
        )
        assert kind == "shape"

    def test_vector_values(self):
        actual = np.array([[1.0, 2.0], [3.0, 4.0]])
        expected = np.array([[1.0, 2.0], [3.0, 4.5]])
        kind, detail, _ = compare_snapshots(actual, expected,
                                            tolerance=1e-6)
        assert kind == "values"
        assert "vertex 1" in detail


class TestEngineSelection:
    def test_monotonic_gets_extra_engines(self):
        profile = FUZZ_ALGORITHMS["sssp"]
        engines = available_engines(profile, num_vertices=20)
        assert "kickstarter" in engines
        assert "dataflow" in engines

    def test_dataflow_gated_by_size(self):
        profile = FUZZ_ALGORITHMS["sssp"]
        engines = available_engines(profile, num_vertices=1000)
        assert "dataflow" not in engines

    def test_fixed_point_roster(self):
        profile = FUZZ_ALGORITHMS["pagerank"]
        engines = available_engines(profile, num_vertices=20)
        assert engines == ["ligra", "gbreset", "graphbolt"]

    def test_build_runner_rejects_mismatches(self):
        with pytest.raises(ValueError):
            build_runner("kickstarter", FUZZ_ALGORITHMS["pagerank"])
        with pytest.raises(ValueError):
            build_runner("no-such-engine", FUZZ_ALGORITHMS["pagerank"])


def _naive_trap() -> Workload:
    """A 12-cycle workload on which naive value reuse measurably
    diverges (a structural change far from the converged fixpoint) while
    every honest engine agrees; diverges before the final batch so
    ``stop_at_first`` has something to skip."""
    n = 12
    edges = [(v, v + 1, 1.0) for v in range(n - 1)] + [(n - 1, 0, 1.0)]
    return Workload(
        seed=0, algorithm="pagerank", num_vertices=n, edges=edges,
        schedule=[
            MutationBatch.from_edges(deletions=[(n - 1, 0)]),
            MutationBatch.from_edges(additions=[(0, n // 2)]),
            MutationBatch.empty(),
        ],
    )


class TestCheckWorkload:
    def test_seeded_workloads_agree(self):
        # A pinned mini-campaign: every engine agrees on every batch.
        for seed in range(6):
            report = check_workload(generate_workload(seed))
            assert report.ok, "\n".join(
                str(d) for d in report.divergences
            )
            assert report.batches_checked == len(
                report.workload.schedule
            )

    def test_naive_strategy_is_caught(self):
        report = check_workload(_naive_trap(), include_naive=True)
        assert not report.ok
        assert all(d.engine == "naive" for d in report.divergences)

    def test_empty_batch_work_sanity_recorded(self):
        workload = Workload(
            seed=0, algorithm="pagerank", num_vertices=4,
            edges=[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)],
            schedule=[MutationBatch.empty()],
        )
        report = check_workload(workload)
        assert report.ok
        # Refinement does no edge work on a no-op batch; restart does.
        assert report.edge_work["graphbolt"][-1] == 0
        assert report.edge_work["ligra"][-1] > 0

    def test_stop_at_first_halts_early(self):
        workload = _naive_trap()
        report = check_workload(workload, include_naive=True,
                                stop_at_first=True)
        assert not report.ok
        assert report.batches_checked < len(workload.schedule)

    def test_crashing_engine_reported_not_raised(self, monkeypatch):
        import repro.testing.oracle as oracle_module

        workload = generate_workload(0, algorithms=["pagerank"])
        real_build = oracle_module.build_runner

        def flaky_build(engine, profile, **kwargs):
            runner = real_build(engine, profile, **kwargs)
            if engine == "graphbolt":
                def boom(batch):
                    raise RuntimeError("kaboom")
                runner.apply = boom
            return runner

        monkeypatch.setattr(oracle_module, "build_runner", flaky_build)
        report = oracle_module.check_workload(workload)
        crashes = [d for d in report.divergences if d.kind == "crash"]
        assert crashes and "kaboom" in crashes[0].detail
