"""Shrinker tests, including the plant-a-bug harness self-test.

The self-test is the proof the whole subsystem is live: a deliberately
broken engine (GraphBolt with ``strategy="naive"``, the incorrect reuse
of Figure 2 / Table 1) must be *detected* by the oracle and the failure
must *shrink* to a tiny repro -- demonstrating the harness catches real
divergence rather than passing vacuously.
"""

import pytest

from repro.graph.mutation import MutationBatch
from repro.testing.oracle import check_workload
from repro.testing.shrinker import _ddmin, shrink, to_pytest
from repro.testing.workloads import Workload, generate_workload


def naive_fails(workload: Workload) -> bool:
    return not check_workload(workload, include_naive=True,
                              stop_at_first=True).ok


class TestDdmin:
    def test_minimises_to_single_culprit(self):
        items = list(range(20))
        result = _ddmin(items, lambda subset: 13 in subset)
        assert result == [13]

    def test_keeps_interacting_pair(self):
        items = list(range(10))
        result = _ddmin(
            items, lambda subset: 2 in subset and 7 in subset
        )
        assert sorted(result) == [2, 7]

    def test_empty_ok(self):
        assert _ddmin([], lambda subset: True) == []


class TestShrink:
    def test_requires_failing_input(self):
        healthy = generate_workload(0)
        with pytest.raises(ValueError, match="failing workload"):
            shrink(healthy, lambda w: False)

    def test_budget_exhaustion_returns_failing_workload(self):
        workload = _planted_workload()
        result = shrink(workload, naive_fails, max_checks=3)
        assert result.exhausted
        assert naive_fails(result.workload)


def _planted_workload() -> Workload:
    """A 24-vertex workload on which naive reuse diverges."""
    edges = [(v, (v + 1) % 24, 1.0) for v in range(24)]
    return Workload(
        seed=999, algorithm="pagerank", num_vertices=24, edges=edges,
        schedule=[
            MutationBatch.from_edges(additions=[(0, 12)],
                                     add_weights=[1.0]),
            MutationBatch.from_edges(deletions=[(5, 6)]),
        ],
        kinds=["uniform", "delete_heavy"],
    )


class TestPlantABug:
    def test_oracle_detects_and_shrinks_naive_strategy(self):
        workload = _planted_workload()

        report = check_workload(workload, include_naive=True)
        assert not report.ok, "oracle failed to catch the planted bug"
        assert any(d.engine == "naive" for d in report.divergences)

        # Without the broken engine the same workload is clean: the
        # detection is the bug, not harness noise.
        assert check_workload(workload).ok

        result = shrink(workload, naive_fails, max_checks=400)
        shrunk = result.workload
        assert naive_fails(shrunk)
        assert shrunk.num_vertices <= 20
        assert len(shrunk.edges) <= len(workload.edges)
        assert len(shrunk.schedule) <= len(workload.schedule)

    def test_emitted_repro_is_executable(self):
        workload = _planted_workload()
        result = shrink(workload, naive_fails, max_checks=400)
        source = to_pytest(result.workload, include_naive=True,
                           expect_divergence=True)
        assert "def test_fuzz_seed_999_pagerank" in source
        assert "include_naive=True" in source
        namespace = {}
        exec(compile(source, "<repro>", "exec"), namespace)  # noqa: S102
        test_fn = namespace["test_fuzz_seed_999_pagerank"]
        test_fn()  # the planted divergence still reproduces


class TestToPytest:
    def test_passing_repro_asserts_ok(self):
        workload = generate_workload(1)
        source = to_pytest(workload)
        assert "assert report.ok" in source
        namespace = {}
        exec(compile(source, "<repro>", "exec"), namespace)  # noqa: S102
        [test_fn] = [fn for name, fn in namespace.items()
                     if name.startswith("test_")]
        test_fn()

    def test_empty_batch_rendered(self):
        workload = Workload(
            seed=5, algorithm="pagerank", num_vertices=2,
            edges=[(0, 1, 1.0)], schedule=[MutationBatch.empty()],
        )
        assert "MutationBatch.empty()" in to_pytest(workload)
