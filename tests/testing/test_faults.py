"""Tests for the deterministic failpoint registry."""

import pytest

from repro.testing.faults import (
    KNOWN_SITES,
    FailpointRegistry,
    InjectedCrash,
    InjectedFault,
    get_failpoints,
    hit,
    scoped_failpoints,
)


class TestArming:
    def test_unknown_site_rejected(self):
        registry = FailpointRegistry()
        with pytest.raises(ValueError, match="unknown failpoint"):
            registry.arm("wal.appendd")

    def test_unknown_kind_rejected(self):
        registry = FailpointRegistry()
        with pytest.raises(ValueError, match="kind"):
            registry.arm("wal.append", kind="explode")

    def test_hit_is_one_based(self):
        registry = FailpointRegistry()
        with pytest.raises(ValueError, match="1-based"):
            registry.arm("wal.append", hit=0)

    def test_every_known_site_armable(self):
        registry = FailpointRegistry()
        for site in KNOWN_SITES:
            registry.arm(site)
        assert registry.armed_sites() == sorted(KNOWN_SITES)


class TestFiring:
    def test_unarmed_hits_only_count(self):
        registry = FailpointRegistry()
        for _ in range(3):
            registry.hit("wal.append")
        assert registry.hit_count("wal.append") == 3
        assert registry.fired == []

    def test_fires_on_exact_hit(self):
        registry = FailpointRegistry()
        registry.arm("engine.refine", kind="crash", hit=3)
        registry.hit("engine.refine")
        registry.hit("engine.refine")
        with pytest.raises(InjectedCrash) as excinfo:
            registry.hit("engine.refine")
        assert excinfo.value.site == "engine.refine"
        assert excinfo.value.hit_number == 3

    def test_once_disarms_after_firing(self):
        registry = FailpointRegistry()
        registry.arm("wal.append", hit=1)
        with pytest.raises(InjectedCrash):
            registry.hit("wal.append")
        registry.hit("wal.append")  # recovered process: no second crash
        assert registry.fired_sites() == ["wal.append"]

    def test_fault_kind_is_a_retryable_oserror(self):
        registry = FailpointRegistry()
        registry.arm("checkpoint.write", kind="fault", hit=1)
        with pytest.raises(InjectedFault):
            registry.hit("checkpoint.write")
        assert isinstance(InjectedFault("x"), OSError)

    def test_crash_is_not_an_exception_subclass(self):
        # Quarantine handlers catch Exception; a simulated SIGKILL must
        # tear straight through them.
        assert not issubclass(InjectedCrash, Exception)

    def test_counts_before_arming_are_respected(self):
        registry = FailpointRegistry()
        registry.hit("wal.append")
        registry.arm("wal.append", hit=2)
        with pytest.raises(InjectedCrash):
            registry.hit("wal.append")


class TestProcessWide:
    def test_scoped_registry_restores_previous(self):
        before = get_failpoints()
        with scoped_failpoints() as registry:
            assert get_failpoints() is registry
            registry.arm("wal.append", hit=1)
            with pytest.raises(InjectedCrash):
                hit("wal.append")
        assert get_failpoints() is before

    def test_module_hit_is_noop_by_default(self):
        with scoped_failpoints():
            hit("engine.refine")  # nothing armed: must not raise


class TestSiteRoster:
    def test_resilience_sites_registered(self):
        from repro.testing.faults import DURABLE_SITES, RESILIENCE_SITES

        for site in ("admission.enqueue", "query.deadline",
                     "breaker.probe"):
            assert site in KNOWN_SITES
            assert site in RESILIENCE_SITES
            assert site not in DURABLE_SITES

    def test_split_partitions_the_roster(self):
        from repro.testing.faults import (
            CORRUPT_SITES,
            DURABLE_SITES,
            REPLICATION_SITES,
            RESILIENCE_SITES,
            STORAGE_SITES,
        )

        rosters = (DURABLE_SITES, RESILIENCE_SITES, REPLICATION_SITES,
                   STORAGE_SITES)
        # The crash-sweep rosters partition everything except
        # wal.segment_read, which exists for planted bit-rot on the
        # shipping read path (a corrupt site, not a kill site).
        assert (sum((tuple(r) for r in rosters), ())
                == tuple(KNOWN_SITES[:-1]))
        assert KNOWN_SITES[-1] == "wal.segment_read"
        assert "wal.segment_read" in CORRUPT_SITES
        for index, left in enumerate(rosters):
            for right in rosters[index + 1:]:
                assert not set(left) & set(right)

    def test_storage_sites_registered(self):
        from repro.testing.faults import DURABLE_SITES, STORAGE_SITES

        assert "storage.segment_write" in KNOWN_SITES
        assert "storage.segment_write" in STORAGE_SITES
        assert "storage.segment_write" not in DURABLE_SITES

    def test_replication_sites_registered(self):
        from repro.testing.faults import DURABLE_SITES, REPLICATION_SITES

        for site in ("replication.ship", "replication.reorder",
                     "replication.receive", "replica.query"):
            assert site in KNOWN_SITES
            assert site in REPLICATION_SITES
            assert site not in DURABLE_SITES

    def test_new_sites_armable(self):
        registry = FailpointRegistry()
        registry.arm("breaker.probe", kind="crash", hit=2)
        registry.hit("breaker.probe")  # count-only, below the hit
        with pytest.raises(InjectedCrash):
            registry.hit("breaker.probe")
