"""Property/metamorphic tests on top of the differential harness.

Three invariants any correct streaming engine must satisfy, checked as
fast, seed-pinned tier-1 tests:

- **batch splitting**: applying one batch of 2k mutations is equivalent
  to applying two batches of k (the BSP contract is about the final
  snapshot, not the batch boundaries);
- **round trip**: inserting edges and deleting exactly those edges is a
  no-op on the final values;
- **permutation invariance**: relabelling vertex ids permutes the
  results and changes nothing else (for id-independent algorithms).
"""

import numpy as np
import pytest

from repro.algorithms import PageRank, SSSP
from repro.core.engine import GraphBoltEngine
from repro.graph.csr import CSRGraph
from repro.graph.generators import erdos_renyi
from repro.graph.mutation import MutationBatch
from repro.ligra.engine import LigraEngine

ITERATIONS = 8
SEED = 2024


def pinned_graph(num_vertices=32, num_edges=90):
    return erdos_renyi(num_vertices, num_edges, seed=SEED, weighted=True)


def fresh_pairs(graph, rng, count):
    """Distinct vertex pairs that are not edges of ``graph``."""
    src, dst, _ = graph.all_edges()
    existing = set(zip(src.tolist(), dst.tolist()))
    pairs = []
    while len(pairs) < count:
        u = int(rng.integers(0, graph.num_vertices))
        v = int(rng.integers(0, graph.num_vertices))
        if u != v and (u, v) not in existing and (u, v) not in pairs:
            pairs.append((u, v))
    return pairs


class TestBatchSplitting:
    @pytest.mark.parametrize("k", [3, 8])
    def test_one_batch_of_2k_equals_two_of_k(self, k):
        graph = pinned_graph()
        rng = np.random.default_rng(SEED)
        adds = fresh_pairs(graph, rng, 2 * k)
        weights = (rng.random(2 * k) + 0.5).tolist()

        combined = GraphBoltEngine(PageRank(tolerance=1e-9),
                                   num_iterations=ITERATIONS)
        combined.run(graph)
        whole = combined.apply_mutations(MutationBatch.from_edges(
            additions=adds, add_weights=weights,
        ))

        split = GraphBoltEngine(PageRank(tolerance=1e-9),
                                num_iterations=ITERATIONS)
        split.run(graph)
        split.apply_mutations(MutationBatch.from_edges(
            additions=adds[:k], add_weights=weights[:k],
        ))
        halves = split.apply_mutations(MutationBatch.from_edges(
            additions=adds[k:], add_weights=weights[k:],
        ))

        assert np.allclose(whole, halves, atol=1e-9)
        truth = LigraEngine(PageRank(tolerance=1e-9)).run(
            combined.graph, ITERATIONS
        )
        assert np.allclose(whole, truth, atol=1e-9)

    def test_splitting_deletions(self):
        graph = pinned_graph()
        src, dst, _ = graph.all_edges()
        doomed = [(int(src[i]), int(dst[i])) for i in range(0, 12, 2)]

        combined = GraphBoltEngine(PageRank(tolerance=1e-9),
                                   num_iterations=ITERATIONS)
        combined.run(graph)
        whole = combined.apply_mutations(
            MutationBatch.from_edges(deletions=doomed)
        )

        split = GraphBoltEngine(PageRank(tolerance=1e-9),
                                num_iterations=ITERATIONS)
        split.run(graph)
        split.apply_mutations(
            MutationBatch.from_edges(deletions=doomed[:3])
        )
        halves = split.apply_mutations(
            MutationBatch.from_edges(deletions=doomed[3:])
        )
        assert np.allclose(whole, halves, atol=1e-9)


class TestRoundTrip:
    @pytest.mark.parametrize("algorithm_factory", [
        lambda: PageRank(tolerance=1e-9),
        lambda: SSSP(source=0),
    ], ids=["pagerank", "sssp"])
    def test_insert_then_delete_is_noop(self, algorithm_factory):
        graph = pinned_graph()
        rng = np.random.default_rng(SEED + 1)
        adds = fresh_pairs(graph, rng, 6)
        weights = (rng.random(6) + 0.5).tolist()

        algorithm = algorithm_factory()
        engine = GraphBoltEngine(
            algorithm, num_iterations=ITERATIONS,
            until_convergence=algorithm.uses_previous_value,
        )
        baseline = engine.run(graph).copy()
        engine.apply_mutations(MutationBatch.from_edges(
            additions=adds, add_weights=weights,
        ))
        returned = engine.apply_mutations(
            MutationBatch.from_edges(deletions=adds)
        )

        finite = np.isfinite(baseline)
        assert np.array_equal(finite, np.isfinite(returned))
        assert np.allclose(returned[finite], baseline[finite],
                           atol=1e-9)

    def test_round_trip_of_existing_edges_restores_weights(self):
        graph = pinned_graph()
        src, dst, weight = graph.all_edges()
        doomed = [(int(src[i]), int(dst[i])) for i in range(4)]
        doomed_weights = [float(weight[i]) for i in range(4)]

        engine = GraphBoltEngine(PageRank(tolerance=1e-9),
                                 num_iterations=ITERATIONS)
        baseline = engine.run(graph).copy()
        engine.apply_mutations(
            MutationBatch.from_edges(deletions=doomed)
        )
        returned = engine.apply_mutations(MutationBatch.from_edges(
            additions=doomed, add_weights=doomed_weights,
        ))
        assert np.allclose(returned, baseline, atol=1e-9)


class TestPermutationInvariance:
    def _permuted(self, graph, perm):
        src, dst, weight = graph.all_edges()
        return CSRGraph.from_edges(
            [(int(perm[u]), int(perm[v])) for u, v in zip(src, dst)],
            num_vertices=graph.num_vertices,
            weights=weight.tolist(),
        )

    def test_pagerank_is_permutation_invariant(self):
        graph = pinned_graph()
        rng = np.random.default_rng(SEED + 2)
        perm = rng.permutation(graph.num_vertices)

        adds = fresh_pairs(graph, rng, 5)
        weights = (rng.random(5) + 0.5).tolist()
        dels_src, dels_dst, _ = graph.all_edges()
        dels = [(int(dels_src[i]), int(dels_dst[i])) for i in (0, 7, 13)]

        original = GraphBoltEngine(PageRank(tolerance=1e-9),
                                   num_iterations=ITERATIONS)
        original.run(graph)
        base_values = original.apply_mutations(MutationBatch.from_edges(
            additions=adds, deletions=dels, add_weights=weights,
        ))

        relabeled = GraphBoltEngine(PageRank(tolerance=1e-9),
                                    num_iterations=ITERATIONS)
        relabeled.run(self._permuted(graph, perm))
        perm_values = relabeled.apply_mutations(
            MutationBatch.from_edges(
                additions=[(int(perm[u]), int(perm[v]))
                           for u, v in adds],
                deletions=[(int(perm[u]), int(perm[v]))
                           for u, v in dels],
                add_weights=weights,
            )
        )
        assert np.allclose(perm_values[perm], base_values, atol=1e-9)

    def test_sssp_is_invariant_with_relocated_source(self):
        graph = pinned_graph()
        rng = np.random.default_rng(SEED + 3)
        # Keep the source fixed at id 0 so both runs use the same
        # algorithm config; permute every other vertex.
        perm = np.concatenate([
            [0], 1 + rng.permutation(graph.num_vertices - 1)
        ]).astype(np.int64)

        original = GraphBoltEngine(SSSP(source=0),
                                   until_convergence=True)
        base_values = original.run(graph)

        relabeled = GraphBoltEngine(SSSP(source=0),
                                    until_convergence=True)
        perm_values = relabeled.run(self._permuted(graph, perm))

        base_finite = np.isfinite(base_values)
        assert np.array_equal(np.isfinite(perm_values[perm]),
                              base_finite)
        assert np.allclose(perm_values[perm][base_finite],
                           base_values[base_finite], atol=1e-9)
