"""Bit-for-bit equivalence of the sharded and serial backends.

The sharded backend's contract (repro.runtime.exec module docstring) is
that shard-by-shard gathers and shard-local scatters touch every array
element in the same order the serial backend does, so the float results
are *exactly* equal -- not merely within tolerance.  This suite pins
that contract across every engine family at several shard counts,
including workloads that grow the vertex space mid-stream (which
re-partitions by extending the last shard).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import PageRank
from repro.core.tagreset import TagResetEngine
from repro.graph.mutation import MutationBatch
from repro.runtime.exec import SerialBackend, ShardedBackend
from repro.testing.runners import available_engines, build_runner
from repro.testing.workloads import Workload, generate_workload

SHARD_COUNTS = (1, 2, 7)

#: Seeds chosen so the sweep includes sparse and dense frontiers,
#: deletions, and empty batches across the fuzz algorithm roster.
SWEEP_SEEDS = (3, 11, 29, 47)


def _snapshots(workload: Workload, engine: str, backend) -> list:
    """All value snapshots (initial + per batch) for one engine run."""
    runner = build_runner(engine, workload.profile, backend=backend)
    graph = workload.build_graph()
    snaps = [np.array(runner.setup(graph), dtype=np.float64, copy=True)]
    for batch in workload.schedule:
        snaps.append(np.array(runner.apply(batch), dtype=np.float64,
                              copy=True))
    return snaps


def _assert_identical(workload: Workload, engine: str,
                      num_shards: int) -> None:
    serial = _snapshots(workload, engine, SerialBackend())
    sharded = _snapshots(workload, engine, ShardedBackend(num_shards))
    assert len(serial) == len(sharded)
    for index, (expect, got) in enumerate(zip(serial, sharded)):
        assert expect.shape == got.shape, (engine, index)
        # tobytes() compares the exact bit patterns, so even a
        # least-significant-bit float reordering fails loudly.
        assert expect.tobytes() == got.tobytes(), (
            f"{engine} diverged at snapshot {index} with "
            f"{num_shards} shards on {workload.describe()}"
        )


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
@pytest.mark.parametrize("seed", SWEEP_SEEDS)
def test_fuzz_workloads_bit_identical(seed, num_shards):
    """Every applicable engine agrees bit-for-bit across backends."""
    workload = generate_workload(seed)
    engines = available_engines(workload.profile, workload.num_vertices)
    for engine in engines:
        _assert_identical(workload, engine, num_shards)


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
def test_vertex_growth_bit_identical(num_shards):
    """Mutation batches that grow the vertex space (forcing the last
    shard to extend) stay bit-for-bit identical, for the path-style
    engines (kickstarter/dataflow) as well as the BSP ones."""
    workload = Workload(
        seed=0,
        algorithm="sssp",
        num_vertices=9,
        edges=[(0, 1, 1.5), (0, 2, 0.5), (1, 3, 2.0), (2, 3, 1.0),
               (3, 4, 0.25), (4, 5, 1.0), (5, 6, 3.0), (2, 7, 4.0),
               (7, 8, 0.75)],
        schedule=[
            MutationBatch.from_edges(additions=[(6, 9), (8, 10)],
                                     grow_to=11),
            MutationBatch.from_edges(deletions=[(3, 4)],
                                     additions=[(1, 4)]),
            MutationBatch.from_edges(grow_to=14),
            MutationBatch.empty(),
        ],
        kinds=["grow", "uniform", "isolated", "empty"],
    )
    engines = available_engines(workload.profile, workload.num_vertices)
    assert "kickstarter" in engines and "dataflow" in engines
    for engine in engines:
        _assert_identical(workload, engine, num_shards)


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
def test_tagreset_bit_identical(num_shards):
    """The tag-and-recompute corrector also rides the backend layer."""
    workload = generate_workload(5, algorithms=["pagerank"])
    batches = list(workload.schedule) or [MutationBatch.empty()]

    def run(backend):
        engine = TagResetEngine(PageRank(tolerance=1e-9),
                                num_iterations=6, backend=backend)
        snaps = [engine.run(workload.build_graph()).copy()]
        for batch in batches:
            snaps.append(engine.apply_mutations(batch).copy())
        return snaps

    serial = run(SerialBackend())
    sharded = run(ShardedBackend(num_shards))
    for expect, got in zip(serial, sharded):
        assert expect.tobytes() == got.tobytes()


def test_sharded_records_shard_loads():
    """The sharded sweep is measured: multi-shard runs populate a
    per-shard load vector spanning more than one shard."""
    workload = generate_workload(3, algorithms=["pagerank"])
    runner = build_runner("graphbolt", workload.profile,
                          backend=ShardedBackend(4))
    runner.setup(workload.build_graph())
    for batch in workload.schedule:
        runner.apply(batch)
    loads = runner.metrics.shard_loads
    assert loads and all(v > 0 for v in loads.values())
    assert len(loads) > 1
