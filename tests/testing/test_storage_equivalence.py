"""Bit-for-bit equivalence of heap and mmap snapshot storage.

The storage contract (repro.graph.storage module docstring) is that
:class:`MmapStore` is invisible above the :class:`CSRGraph` slice API:
every engine family -- Ligra-style full recompute, delta/tag-reset,
GraphBolt refinement, KickStarter, and the mini differential-dataflow
comparator -- must produce *exactly* the float bit patterns it produces
over plain heap arrays, for the same workloads the sharded-backend
suite pins, including batches that grow the vertex space (which force
the segment-wise :meth:`MmapStore.adjust` to extend offsets).  The
sharded backend's :class:`PartitionedCSR` also builds its shard views
directly over the memmapped arrays, so the cross product
(storage x backend) is pinned too.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.mutation import MutationBatch
from repro.graph.storage import MmapStore
from repro.runtime.exec import SerialBackend, ShardedBackend
from repro.testing.runners import available_engines, build_runner
from repro.testing.workloads import Workload, generate_workload

#: Seeds chosen to cover sparse and dense frontiers, deletions, and
#: empty batches across the fuzz algorithm roster (mirrors the
#: sharded-equivalence sweep).
SWEEP_SEEDS = (3, 11, 29, 47)


def _snapshots(workload: Workload, engine: str, store, backend) -> list:
    """All value snapshots (initial + per batch) for one engine run
    over one snapshot store."""
    runner = build_runner(engine, workload.profile, backend=backend)
    graph = workload.build_graph()
    if store is not None:
        graph = store.publish(graph)
    snaps = [np.array(runner.setup(graph), dtype=np.float64, copy=True)]
    for batch in workload.schedule:
        snaps.append(np.array(runner.apply(batch), dtype=np.float64,
                              copy=True))
    return snaps


def _assert_identical(workload: Workload, engine: str, store,
                      backend=None) -> None:
    heap = _snapshots(workload, engine, None,
                      backend or SerialBackend())
    mmapped = _snapshots(workload, engine, store,
                         backend or SerialBackend())
    assert len(heap) == len(mmapped)
    for index, (expect, got) in enumerate(zip(heap, mmapped)):
        assert expect.shape == got.shape, (engine, index)
        assert expect.tobytes() == got.tobytes(), (
            f"{engine} over mmap storage diverged at snapshot {index} "
            f"on {workload.describe()}"
        )


@pytest.mark.parametrize("seed", SWEEP_SEEDS)
def test_fuzz_workloads_bit_identical_across_stores(seed, tmp_path):
    """Every applicable engine family agrees bit-for-bit between heap
    and mmap storage."""
    workload = generate_workload(seed)
    engines = available_engines(workload.profile, workload.num_vertices)
    for index, engine in enumerate(engines):
        store = MmapStore(str(tmp_path / f"{seed}-{index}"))
        _assert_identical(workload, engine, store)


def _growth_workload() -> Workload:
    return Workload(
        seed=0,
        algorithm="sssp",
        num_vertices=9,
        edges=[(0, 1, 1.5), (0, 2, 0.5), (1, 3, 2.0), (2, 3, 1.0),
               (3, 4, 0.25), (4, 5, 1.0), (5, 6, 3.0), (2, 7, 4.0),
               (7, 8, 0.75)],
        schedule=[
            MutationBatch.from_edges(additions=[(6, 9), (8, 10)],
                                     grow_to=11),
            MutationBatch.from_edges(deletions=[(3, 4)],
                                     additions=[(1, 4)]),
            MutationBatch.from_edges(grow_to=14),
            MutationBatch.empty(),
        ],
        kinds=["grow", "uniform", "isolated", "empty"],
    )


def test_vertex_growth_bit_identical_across_stores(tmp_path):
    """Growing batches extend the memmapped offsets segment-wise; the
    path-style engines (kickstarter/dataflow) must agree too."""
    workload = _growth_workload()
    engines = available_engines(workload.profile, workload.num_vertices)
    assert "kickstarter" in engines and "dataflow" in engines
    for index, engine in enumerate(engines):
        store = MmapStore(str(tmp_path / f"grow-{index}"))
        _assert_identical(workload, engine, store)


@pytest.mark.parametrize("num_shards", (2, 7))
def test_partitioned_csr_over_memmapped_arrays(num_shards, tmp_path):
    """The sharded backend's PartitionedCSR shard views work unchanged
    over memmapped arrays: sharded-over-mmap equals serial-over-heap."""
    workload = generate_workload(11, algorithms=["pagerank"])
    store = MmapStore(str(tmp_path))
    _assert_identical(workload, "graphbolt", store,
                      backend=ShardedBackend(num_shards))


def test_shard_edge_blocks_alias_memmap_pages(tmp_path):
    """Each shard's out-edge block is a contiguous *slice* of the CSR
    arrays (PartitionedCSR docstring), so over an MmapStore snapshot
    the shard views must alias the memmapped buffers, not copy them."""
    workload = generate_workload(3, algorithms=["pagerank"])
    store = MmapStore(str(tmp_path))
    graph = store.publish(workload.build_graph())
    assert isinstance(graph.out_targets, np.memmap)
    partition = ShardedBackend(3).partition(graph)
    offsets = graph.out_offsets
    for shard in range(partition.num_shards):
        lo = int(offsets[partition.boundaries[shard]])
        hi = int(offsets[partition.boundaries[shard + 1]])
        block = graph.out_targets[lo:hi]
        if block.size:
            assert np.shares_memory(block, graph.out_targets)
