"""Unit tests for metrics, timers and memory reports."""

import time
from dataclasses import dataclass

import pytest

from repro.runtime.metrics import EngineMetrics, MemoryReport, Timer


class TestEngineMetrics:
    def test_counting(self):
        metrics = EngineMetrics()
        metrics.count_edges(10)
        metrics.count_edges(5)
        metrics.count_vertices(3)
        assert metrics.edge_computations == 15
        assert metrics.vertex_computations == 3

    def test_snapshot_and_delta(self):
        metrics = EngineMetrics()
        metrics.count_edges(10)
        snap = metrics.snapshot()
        metrics.count_edges(7)
        metrics.iterations += 2
        delta = metrics.delta_since(snap)
        assert delta.edge_computations == 7
        assert delta.iterations == 2
        # The snapshot is frozen.
        assert snap.edge_computations == 10

    def test_phase_time_delta(self):
        metrics = EngineMetrics()
        metrics.add_phase_time("refine", 1.0)
        snap = metrics.snapshot()
        metrics.add_phase_time("refine", 0.5)
        metrics.add_phase_time("hybrid", 0.25)
        delta = metrics.delta_since(snap)
        assert abs(delta.phase_seconds["refine"] - 0.5) < 1e-12
        assert abs(delta.phase_seconds["hybrid"] - 0.25) < 1e-12

    def test_merge(self):
        a = EngineMetrics(edge_computations=5)
        a.add_phase_time("x", 1.0)
        b = EngineMetrics(edge_computations=3, iterations=2)
        b.add_phase_time("x", 2.0)
        a.merge(b)
        assert a.edge_computations == 8
        assert a.iterations == 2
        assert a.phase_seconds["x"] == 3.0

    def test_reset(self):
        metrics = EngineMetrics(edge_computations=5)
        metrics.add_phase_time("x", 1.0)
        metrics.reset()
        assert metrics.edge_computations == 0
        assert metrics.phase_seconds == {}

    def test_reset_preserves_dict_identity(self):
        # Callers may hold a reference to phase_seconds across resets.
        metrics = EngineMetrics()
        phases = metrics.phase_seconds
        metrics.add_phase_time("x", 1.0)
        metrics.reset()
        assert metrics.phase_seconds is phases

    def test_new_field_survives_snapshot_delta_round_trip(self):
        # Regression: snapshot/delta_since once listed fields by hand,
        # so a newly added counter silently vanished from both.  They
        # now iterate dataclasses.fields -- a subclass with an extra
        # field must round-trip it with zero extra code.
        @dataclass
        class Extended(EngineMetrics):
            cache_hits: int = 0

        metrics = Extended()
        metrics.count_edges(4)
        metrics.cache_hits = 3
        snap = metrics.snapshot()
        assert isinstance(snap, Extended)
        assert snap.cache_hits == 3
        metrics.cache_hits += 7
        metrics.count_edges(1)
        delta = metrics.delta_since(snap)
        assert delta.cache_hits == 7
        assert delta.edge_computations == 1
        other = Extended(cache_hits=5)
        metrics.merge(other)
        assert metrics.cache_hits == 15
        metrics.reset()
        assert metrics.cache_hits == 0


class TestTimer:
    def test_records_elapsed(self):
        metrics = EngineMetrics()
        with Timer(metrics, "sleep") as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.01
        assert metrics.phase_seconds["sleep"] >= 0.01

    def test_accumulates(self):
        metrics = EngineMetrics()
        for _ in range(2):
            with Timer(metrics, "phase"):
                pass
        assert metrics.phase_seconds["phase"] >= 0.0

    def test_none_metrics_ok(self):
        with Timer(None, "phase") as timer:
            pass
        assert timer.elapsed >= 0.0

    def test_records_on_exception_and_propagates(self):
        metrics = EngineMetrics()
        with pytest.raises(ValueError):
            with Timer(metrics, "phase") as timer:
                time.sleep(0.005)
                raise ValueError("boom")
        # The phase time still lands, and the exception is not eaten.
        assert timer.elapsed >= 0.005
        assert metrics.phase_seconds["phase"] >= 0.005


class TestMemoryReport:
    def test_overhead(self):
        report = MemoryReport(baseline_bytes=100, dependency_bytes=13)
        assert abs(report.overhead_fraction - 0.13) < 1e-12
        assert abs(report.overhead_percent - 13.0) < 1e-9

    def test_zero_baseline(self):
        assert MemoryReport(0, 0).overhead_fraction == 0.0
        assert MemoryReport(0, 5).overhead_fraction == float("inf")

    def test_zero_baseline_percent(self):
        # The percent view follows the fraction through both edges.
        assert MemoryReport(0, 0).overhead_percent == 0.0
        assert MemoryReport(0, 5).overhead_percent == float("inf")
