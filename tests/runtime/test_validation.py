"""Unit tests for result validation helpers."""

import numpy as np
import pytest

from repro.runtime.validation import (
    assert_same_results,
    count_exceeding,
    max_relative_error,
    relative_errors,
)


class TestRelativeErrors:
    def test_basic(self):
        errors = relative_errors([1.1, 2.0], [1.0, 2.0])
        assert np.allclose(errors, [0.1, 0.0])

    def test_vector_values_reduce_with_max(self):
        actual = np.array([[1.0, 2.2]])
        expected = np.array([[1.0, 2.0]])
        assert np.allclose(relative_errors(actual, expected), [0.1])

    def test_zero_expected_uses_absolute(self):
        errors = relative_errors([0.5], [0.0])
        assert np.allclose(errors, [0.5])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            relative_errors(np.zeros(2), np.zeros(3))

    def test_rejects_nan_expected(self):
        with pytest.raises(ValueError, match="vertex 1.*NaN/inf"):
            relative_errors([1.0, 2.0], [1.0, np.nan])

    def test_rejects_inf_expected(self):
        with pytest.raises(ValueError, match="finite"):
            relative_errors([1.0, 2.0], [np.inf, 2.0])

    def test_rejects_non_finite_vector_component(self):
        expected = np.array([[1.0, 2.0], [3.0, np.inf]])
        actual = np.ones_like(expected)
        with pytest.raises(ValueError, match="vertex 1"):
            relative_errors(actual, expected)

    def test_non_finite_actual_still_measured(self):
        # Only the reference must be finite; a broken engine emitting
        # inf/NaN shows up as an (infinite) error, not a crash.
        errors = relative_errors([np.inf, np.nan], [1.0, 1.0])
        assert np.isinf(errors[0])
        assert np.isnan(errors[1])


class TestCensus:
    def test_count_exceeding(self):
        actual = [1.0, 1.2, 1.011]
        expected = [1.0, 1.0, 1.0]
        assert count_exceeding(actual, expected, 0.01) == 2
        assert count_exceeding(actual, expected, 0.10) == 1

    def test_max_relative_error(self):
        assert max_relative_error([1.5], [1.0]) == pytest.approx(0.5)
        assert max_relative_error([], []) == 0.0


class TestAssertSame:
    def test_passes_within_tolerance(self):
        assert_same_results([1.0 + 1e-9], [1.0], tolerance=1e-7)

    def test_fails_beyond_tolerance(self):
        with pytest.raises(AssertionError, match="vertex 1"):
            assert_same_results([1.0, 2.0], [1.0, 1.0], tolerance=1e-7)

    def test_context_in_message(self):
        with pytest.raises(AssertionError, match="pagerank"):
            assert_same_results([2.0], [1.0], context="pagerank")

    def test_empty_arrays_pass(self):
        assert_same_results([], [])

    def test_failure_path_computes_errors_once(self, monkeypatch):
        import repro.runtime.validation as validation

        calls = []
        original = validation.relative_errors

        def counting(actual, expected):
            calls.append(1)
            return original(actual, expected)

        monkeypatch.setattr(validation, "relative_errors", counting)
        with pytest.raises(AssertionError):
            validation.assert_same_results([1.0, 2.0], [1.0, 1.0])
        assert len(calls) == 1
