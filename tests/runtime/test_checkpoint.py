"""Tests for engine checkpoint/restore."""

import os

import numpy as np
import pytest

from repro.algorithms import LabelPropagation, PageRank, SSSP
from repro.core.engine import GraphBoltEngine
from repro.core.pruning import PruningPolicy
from repro.graph.generators import rmat
from repro.ligra.engine import LigraEngine
from repro.runtime.checkpoint import (
    _payload_crc32,
    load_engine,
    read_checkpoint_extra,
    save_engine,
)
from tests.conftest import make_random_batch


@pytest.fixture
def graph():
    return rmat(scale=7, edge_factor=5, seed=90, weighted=True)


def checkpoint_roundtrip(tmp_path, factory, graph, rng, iterations=8):
    engine = GraphBoltEngine(factory(), num_iterations=iterations)
    engine.run(graph)
    engine.apply_mutations(make_random_batch(engine.graph, rng, 10, 10))
    path = str(tmp_path / "engine.npz")
    save_engine(engine, path)
    restored = load_engine(path, factory())
    return engine, restored


class TestRoundtrip:
    def test_values_survive(self, tmp_path, graph, rng):
        engine, restored = checkpoint_roundtrip(
            tmp_path, lambda: PageRank(), graph, rng
        )
        assert np.array_equal(engine.values, restored.values)
        assert restored.graph.edge_set() == engine.graph.edge_set()
        assert restored.history.horizon == engine.history.horizon

    def test_restored_engine_continues_incrementally(self, tmp_path,
                                                     graph, rng):
        engine, restored = checkpoint_roundtrip(
            tmp_path, lambda: LabelPropagation(num_labels=3), graph, rng
        )
        batch = make_random_batch(engine.graph, rng, 12, 12)
        original = engine.apply_mutations(batch)
        resumed = restored.apply_mutations(batch)
        assert np.array_equal(original, resumed)
        truth = LigraEngine(LabelPropagation(num_labels=3)).run(
            restored.graph, 8
        )
        assert np.allclose(resumed, truth, atol=1e-7)

    def test_vector_values_roundtrip(self, tmp_path, graph, rng):
        engine, restored = checkpoint_roundtrip(
            tmp_path, lambda: LabelPropagation(num_labels=4), graph, rng
        )
        assert restored.values.shape == engine.values.shape

    def test_inf_values_roundtrip(self, tmp_path, graph, rng):
        engine, restored = checkpoint_roundtrip(
            tmp_path, lambda: SSSP(source=0), graph, rng, iterations=40
        )
        assert np.array_equal(
            np.isinf(engine.values), np.isinf(restored.values)
        )


class TestGuards:
    def test_algorithm_mismatch_rejected(self, tmp_path, graph, rng):
        engine = GraphBoltEngine(PageRank(), num_iterations=5)
        engine.run(graph)
        path = str(tmp_path / "engine.npz")
        save_engine(engine, path)
        with pytest.raises(ValueError, match="mismatch"):
            load_engine(path, LabelPropagation())

    def test_unrun_engine_rejected(self, tmp_path):
        engine = GraphBoltEngine(PageRank())
        with pytest.raises(RuntimeError):
            save_engine(engine, str(tmp_path / "x.npz"))

    def test_dynamic_backend_checkpoints_via_csr(self, tmp_path, graph,
                                                 rng):
        from repro.graph.dynamic import DynamicStreamingGraph

        engine = GraphBoltEngine(
            PageRank(), num_iterations=6,
            streaming_factory=DynamicStreamingGraph,
        )
        engine.run(graph)
        engine.apply_mutations(make_random_batch(engine.graph, rng, 5, 5))
        path = str(tmp_path / "engine.npz")
        save_engine(engine, path)
        restored = load_engine(path, PageRank())
        assert restored.graph.edge_set() == engine.graph.edge_set()
        assert np.array_equal(restored.values, engine.values)


class TestAtomicWrite:
    def test_returns_real_path_when_suffix_missing(self, tmp_path, graph):
        engine = GraphBoltEngine(PageRank(), num_iterations=4)
        engine.run(graph)
        returned = save_engine(engine, str(tmp_path / "ckpt"))
        assert returned == str(tmp_path / "ckpt.npz")
        assert os.path.exists(returned)
        restored = load_engine(returned, PageRank())
        assert np.array_equal(restored.values, engine.values)

    def test_no_temp_droppings(self, tmp_path, graph):
        engine = GraphBoltEngine(PageRank(), num_iterations=4)
        engine.run(graph)
        save_engine(engine, str(tmp_path / "a.npz"))
        leftovers = [name for name in os.listdir(tmp_path)
                     if name.endswith(".tmp")]
        assert leftovers == []

    def test_overwrite_is_atomic_replace(self, tmp_path, graph, rng):
        engine = GraphBoltEngine(PageRank(), num_iterations=4)
        engine.run(graph)
        path = str(tmp_path / "gen.npz")
        save_engine(engine, path)
        engine.apply_mutations(make_random_batch(engine.graph, rng, 5, 5))
        save_engine(engine, path)
        restored = load_engine(path, PageRank())
        assert np.array_equal(restored.values, engine.values)

    def test_extra_metadata_roundtrip(self, tmp_path, graph):
        engine = GraphBoltEngine(PageRank(), num_iterations=4)
        engine.run(graph)
        path = save_engine(engine, str(tmp_path / "m.npz"),
                           extra={"recovery_seq": np.int64(42)})
        extra = read_checkpoint_extra(path)
        assert int(extra["recovery_seq"]) == 42
        # Extras do not leak into the engine reconstruction.
        restored = load_engine(path, PageRank())
        assert np.array_equal(restored.values, engine.values)


def _saved_path(tmp_path, graph, rng):
    engine = GraphBoltEngine(PageRank(), num_iterations=4)
    engine.run(graph)
    engine.apply_mutations(make_random_batch(engine.graph, rng, 5, 5))
    return save_engine(engine, str(tmp_path / "victim.npz"))


def _tamper(path, mutate):
    """Rewrite a checkpoint through ``mutate(payload_dict)``."""
    with np.load(path, allow_pickle=False) as data:
        payload = {key: data[key].copy() for key in data.files}
    mutate(payload)
    with open(path, "wb") as stream:
        np.savez_compressed(stream, **payload)


class TestValidationOnLoad:
    def test_bitrot_fails_checksum(self, tmp_path, graph, rng):
        path = _saved_path(tmp_path, graph, rng)

        def flip_values(payload):
            payload["values"] = payload["values"] + 1e-3

        _tamper(path, flip_values)
        with pytest.raises(ValueError, match="checksum mismatch"):
            load_engine(path, PageRank())

    def test_out_of_range_index_rejected(self, tmp_path, graph, rng):
        path = _saved_path(tmp_path, graph, rng)

        def corrupt_targets(payload):
            payload["out_targets"] = payload["out_targets"].copy()
            payload["out_targets"][0] = int(payload["num_vertices"]) + 5
            refresh_crc(payload)

        def refresh_crc(payload):
            del payload["payload_crc32"]
            payload["payload_crc32"] = np.uint32(_payload_crc32(payload))

        _tamper(path, corrupt_targets)
        with pytest.raises(ValueError,
                           match="out_targets indexes outside"):
            load_engine(path, PageRank())

    def test_wrong_values_length_rejected(self, tmp_path, graph, rng):
        path = _saved_path(tmp_path, graph, rng)

        def shrink_values(payload):
            payload["values"] = payload["values"][:-3]
            payload["prev_values"] = payload["prev_values"][:-3]
            del payload["payload_crc32"]
            payload["payload_crc32"] = np.uint32(_payload_crc32(payload))

        _tamper(path, shrink_values)
        with pytest.raises(ValueError, match="values length"):
            load_engine(path, PageRank())

    def test_unsupported_version_rejected(self, tmp_path, graph, rng):
        path = _saved_path(tmp_path, graph, rng)

        def age(payload):
            payload["format_version"] = np.int64(1)
            del payload["payload_crc32"]
            payload["payload_crc32"] = np.uint32(_payload_crc32(payload))

        _tamper(path, age)
        with pytest.raises(ValueError, match="version"):
            load_engine(path, PageRank())

    def test_truncated_file_rejected(self, tmp_path, graph, rng):
        path = _saved_path(tmp_path, graph, rng)
        size = os.path.getsize(path)
        with open(path, "r+b") as stream:
            stream.truncate(size // 2)
        with pytest.raises(ValueError, match="corrupt checkpoint"):
            load_engine(path, PageRank())

    def test_not_a_checkpoint_rejected(self, tmp_path, graph):
        path = str(tmp_path / "other.npz")
        np.savez(path, something=np.arange(4))
        with pytest.raises(ValueError, match="corrupt checkpoint"):
            load_engine(path, PageRank())


class TestConfigurationRoundtrip:
    def test_non_default_pruning_policy(self, tmp_path, graph, rng):
        policy = PruningPolicy(horizon=2, vertical=True)
        engine = GraphBoltEngine(PageRank(), num_iterations=6,
                                 pruning=policy)
        engine.run(graph)
        engine.apply_mutations(make_random_batch(engine.graph, rng, 8, 8))
        path = save_engine(engine, str(tmp_path / "pruned.npz"))
        restored = load_engine(path, PageRank(), pruning=policy)
        assert np.array_equal(restored.values, engine.values)
        # Oracle-style: the next refinement must agree bit-for-bit.
        batch = make_random_batch(engine.graph, rng, 8, 8)
        assert np.array_equal(engine.apply_mutations(batch),
                              restored.apply_mutations(batch))

    def test_until_convergence_engine(self, tmp_path, graph, rng):
        engine = GraphBoltEngine(SSSP(source=0), until_convergence=True,
                                 max_iterations=200)
        engine.run(graph)
        engine.apply_mutations(make_random_batch(engine.graph, rng, 6, 6))
        path = save_engine(engine, str(tmp_path / "conv.npz"))
        restored = load_engine(path, SSSP(source=0), max_iterations=200)
        assert restored.until_convergence
        assert np.array_equal(restored.values, engine.values)
        batch = make_random_batch(engine.graph, rng, 6, 6)
        assert np.array_equal(engine.apply_mutations(batch),
                              restored.apply_mutations(batch))
