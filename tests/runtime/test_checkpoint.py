"""Tests for engine checkpoint/restore."""

import numpy as np
import pytest

from repro.algorithms import LabelPropagation, PageRank, SSSP
from repro.core.engine import GraphBoltEngine
from repro.graph.generators import rmat
from repro.ligra.engine import LigraEngine
from repro.runtime.checkpoint import load_engine, save_engine
from tests.conftest import make_random_batch


@pytest.fixture
def graph():
    return rmat(scale=7, edge_factor=5, seed=90, weighted=True)


def checkpoint_roundtrip(tmp_path, factory, graph, rng, iterations=8):
    engine = GraphBoltEngine(factory(), num_iterations=iterations)
    engine.run(graph)
    engine.apply_mutations(make_random_batch(engine.graph, rng, 10, 10))
    path = str(tmp_path / "engine.npz")
    save_engine(engine, path)
    restored = load_engine(path, factory())
    return engine, restored


class TestRoundtrip:
    def test_values_survive(self, tmp_path, graph, rng):
        engine, restored = checkpoint_roundtrip(
            tmp_path, lambda: PageRank(), graph, rng
        )
        assert np.array_equal(engine.values, restored.values)
        assert restored.graph.edge_set() == engine.graph.edge_set()
        assert restored.history.horizon == engine.history.horizon

    def test_restored_engine_continues_incrementally(self, tmp_path,
                                                     graph, rng):
        engine, restored = checkpoint_roundtrip(
            tmp_path, lambda: LabelPropagation(num_labels=3), graph, rng
        )
        batch = make_random_batch(engine.graph, rng, 12, 12)
        original = engine.apply_mutations(batch)
        resumed = restored.apply_mutations(batch)
        assert np.array_equal(original, resumed)
        truth = LigraEngine(LabelPropagation(num_labels=3)).run(
            restored.graph, 8
        )
        assert np.allclose(resumed, truth, atol=1e-7)

    def test_vector_values_roundtrip(self, tmp_path, graph, rng):
        engine, restored = checkpoint_roundtrip(
            tmp_path, lambda: LabelPropagation(num_labels=4), graph, rng
        )
        assert restored.values.shape == engine.values.shape

    def test_inf_values_roundtrip(self, tmp_path, graph, rng):
        engine, restored = checkpoint_roundtrip(
            tmp_path, lambda: SSSP(source=0), graph, rng, iterations=40
        )
        assert np.array_equal(
            np.isinf(engine.values), np.isinf(restored.values)
        )


class TestGuards:
    def test_algorithm_mismatch_rejected(self, tmp_path, graph, rng):
        engine = GraphBoltEngine(PageRank(), num_iterations=5)
        engine.run(graph)
        path = str(tmp_path / "engine.npz")
        save_engine(engine, path)
        with pytest.raises(ValueError, match="mismatch"):
            load_engine(path, LabelPropagation())

    def test_unrun_engine_rejected(self, tmp_path):
        engine = GraphBoltEngine(PageRank())
        with pytest.raises(RuntimeError):
            save_engine(engine, str(tmp_path / "x.npz"))

    def test_dynamic_backend_checkpoints_via_csr(self, tmp_path, graph,
                                                 rng):
        from repro.graph.dynamic import DynamicStreamingGraph

        engine = GraphBoltEngine(
            PageRank(), num_iterations=6,
            streaming_factory=DynamicStreamingGraph,
        )
        engine.run(graph)
        engine.apply_mutations(make_random_batch(engine.graph, rng, 5, 5))
        path = str(tmp_path / "engine.npz")
        save_engine(engine, path)
        restored = load_engine(path, PageRank())
        assert restored.graph.edge_set() == engine.graph.edge_set()
        assert np.array_equal(restored.values, engine.values)
