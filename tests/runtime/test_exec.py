"""Unit tests for the partitioned execution layer (repro.runtime.exec)
and the measured-makespan scaling model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.runtime.exec import (
    DEFAULT_NUM_SHARDS,
    PartitionedCSR,
    SerialBackend,
    ShardedBackend,
    backend_from_env,
    get_backend,
    load_imbalance,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.runtime.metrics import EngineMetrics
from repro.runtime.parallel import MakespanModel, lpt_makespan


def _chain_graph(num_vertices=12, fan=3):
    """A deliberately skewed graph: early vertices fan out widely."""
    edges = []
    for u in range(num_vertices):
        for k in range(1, 1 + max(fan - u // 3, 1)):
            edges.append((u, (u + k) % num_vertices))
    return CSRGraph.from_edges(edges, num_vertices=num_vertices)


# ----------------------------------------------------------------------
# PartitionedCSR
# ----------------------------------------------------------------------
class TestPartitionedCSR:
    def test_boundaries_cover_vertex_space(self):
        graph = _chain_graph()
        for shards in (1, 2, 3, 5, 64):
            partition = PartitionedCSR.compute(graph, shards)
            assert partition.num_shards == shards
            assert partition.boundaries[0] == 0
            assert partition.boundaries[-1] == graph.num_vertices
            assert np.all(np.diff(partition.boundaries) >= 0)
            assert int(partition.shard_sizes().sum()) == graph.num_vertices

    def test_degree_balanced_cuts(self):
        # One hub holding nearly all edges: the hub's shard should not
        # also absorb a proportional share of the remaining vertices.
        edges = [(0, v) for v in range(1, 40)]
        graph = CSRGraph.from_edges(edges, num_vertices=40)
        partition = PartitionedCSR.compute(graph, 2)
        # Vertex 0 carries ~half the total load on its own, so the
        # first shard stays small.
        assert partition.boundaries[1] < 20

    def test_shard_of_matches_boundaries(self):
        graph = _chain_graph()
        partition = PartitionedCSR.compute(graph, 4)
        ids = np.arange(graph.num_vertices, dtype=np.int64)
        owners = partition.shard_of(ids)
        for k in range(partition.num_shards):
            lo, hi = partition.boundaries[k], partition.boundaries[k + 1]
            assert np.all(owners[lo:hi] == k)

    def test_split_sorted_cuts(self):
        graph = _chain_graph()
        partition = PartitionedCSR.compute(graph, 3)
        ids = np.array([0, 1, 5, 9, 11], dtype=np.int64)
        cuts = partition.split_sorted(ids)
        rebuilt = np.concatenate([
            ids[cuts[k]:cuts[k + 1]] for k in range(3)
        ])
        assert np.array_equal(rebuilt, ids)
        owners = partition.shard_of(ids)
        for k in range(3):
            assert np.all(owners[cuts[k]:cuts[k + 1]] == k)

    def test_for_graph_caches_on_graph(self):
        graph = _chain_graph()
        first = PartitionedCSR.for_graph(graph, 3)
        assert PartitionedCSR.for_graph(graph, 3) is first
        assert PartitionedCSR.for_graph(graph, 5) is not first

    def test_extended_to_grows_last_shard_only(self):
        graph = _chain_graph()
        partition = PartitionedCSR.compute(graph, 4)
        grown = partition.extended_to(graph.num_vertices + 7)
        assert np.array_equal(grown.boundaries[:-1],
                              partition.boundaries[:-1])
        assert grown.num_vertices == graph.num_vertices + 7
        with pytest.raises(ValueError):
            partition.extended_to(graph.num_vertices - 1)

    def test_with_num_vertices_preserves_shard_boundaries(self):
        """Satellite: growing a snapshot propagates every cached
        partition deterministically by extending the last shard."""
        graph = _chain_graph()
        partition = PartitionedCSR.for_graph(graph, 4)
        other = PartitionedCSR.for_graph(graph, 2)
        grown = graph.with_num_vertices(graph.num_vertices + 5)
        grown_partition = PartitionedCSR.for_graph(grown, 4)
        assert np.array_equal(grown_partition.boundaries[:-1],
                              partition.boundaries[:-1])
        assert grown_partition.num_vertices == grown.num_vertices
        # Every cached shard count was propagated, not just one.
        assert np.array_equal(
            PartitionedCSR.for_graph(grown, 2).boundaries[:-1],
            other.boundaries[:-1],
        )
        # Growing by zero returns the same object and cache.
        assert graph.with_num_vertices(graph.num_vertices) is graph

    def test_empty_graph(self):
        graph = CSRGraph.from_edges([], num_vertices=0)
        partition = PartitionedCSR.compute(graph, 3)
        assert partition.num_vertices == 0
        assert partition.num_shards == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionedCSR(np.array([1, 2], dtype=np.int64))
        with pytest.raises(ValueError):
            PartitionedCSR(np.array([0, 3, 2], dtype=np.int64))
        with pytest.raises(ValueError):
            PartitionedCSR.compute(_chain_graph(), 0)


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class TestBackendEquivalence:
    @pytest.mark.parametrize("shards", [1, 2, 5])
    def test_gathers_identical(self, shards):
        graph = _chain_graph()
        serial, sharded = SerialBackend(), ShardedBackend(shards)
        vertices = np.array([0, 2, 3, 7, 11], dtype=np.int64)
        for method in ("gather_out", "gather_in"):
            expect = getattr(serial, method)(graph, vertices, None)
            got = getattr(sharded, method)(graph, vertices, None)
            for e, g in zip(expect, got):
                assert np.array_equal(e, g), method
        for e, g in zip(serial.gather_all(graph, None),
                        sharded.gather_all(graph, None)):
            assert np.array_equal(e, g)

    def test_gather_unsorted_fallback(self):
        graph = _chain_graph()
        sharded = ShardedBackend(3)
        unsorted = np.array([7, 0, 11, 2], dtype=np.int64)
        expect = graph.out_edges_of(unsorted)
        metrics = EngineMetrics()
        got = sharded.gather_out(graph, unsorted, metrics)
        for e, g in zip(expect, got):
            assert np.array_equal(e, g)
        assert metrics.edge_computations == expect[0].size
        assert sum(metrics.shard_loads.values()) == expect[0].size

    def test_scatter_identical_and_shard_local(self):
        from repro.core.aggregation import SumAggregation
        graph = _chain_graph()
        agg = SumAggregation()
        src, dst, _ = graph.all_edges()
        contribs = (np.arange(dst.size, dtype=np.float64) + 0.25) / 3.0
        expect = np.zeros(graph.num_vertices)
        agg.scatter(expect, dst, contribs)
        got = np.zeros(graph.num_vertices)
        metrics = EngineMetrics()
        ShardedBackend(4).scatter(graph, agg, got, dst, contribs, metrics)
        assert expect.tobytes() == got.tobytes()
        assert sum(metrics.shard_loads.values()) == dst.size

    def test_edge_counting_matches_serial(self):
        graph = _chain_graph()
        vertices = np.array([0, 1, 5], dtype=np.int64)
        serial_m, sharded_m = EngineMetrics(), EngineMetrics()
        SerialBackend().gather_out(graph, vertices, serial_m)
        ShardedBackend(3).gather_out(graph, vertices, sharded_m)
        assert serial_m.edge_computations == sharded_m.edge_computations
        # count=False charges nothing but still measures loads.
        quiet = EngineMetrics()
        ShardedBackend(3).gather_all(graph, quiet, count=False)
        assert quiet.edge_computations == 0
        assert sum(quiet.shard_loads.values()) == graph.num_edges

    def test_count_vertices_dense_and_sparse(self):
        graph = _chain_graph()
        backend = ShardedBackend(3)
        metrics = EngineMetrics()
        backend.count_vertices(graph, graph.num_vertices, metrics)
        assert metrics.vertex_computations == graph.num_vertices
        assert sum(metrics.shard_loads.values()) == graph.num_vertices
        sparse = EngineMetrics()
        backend.count_vertices(graph, np.array([0, 11]), sparse)
        assert sparse.vertex_computations == 2


class TestSelection:
    def test_env_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXEC_BACKEND", raising=False)
        assert isinstance(backend_from_env(), SerialBackend)
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "sharded")
        backend = backend_from_env()
        assert isinstance(backend, ShardedBackend)
        assert backend.num_shards == DEFAULT_NUM_SHARDS
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "sharded:9")
        assert backend_from_env().num_shards == 9
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "sharded")
        monkeypatch.setenv("REPRO_EXEC_SHARDS", "6")
        assert backend_from_env().num_shards == 6
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "quantum")
        with pytest.raises(ValueError):
            backend_from_env()

    def test_use_backend_scoping(self):
        outer = get_backend()
        inner = ShardedBackend(2)
        with use_backend(inner):
            assert get_backend() is inner
            assert resolve_backend(None) is inner
        assert get_backend() is outer
        explicit = SerialBackend()
        assert resolve_backend(explicit) is explicit

    def test_set_backend_reset(self):
        previous = get_backend()
        try:
            chosen = ShardedBackend(3)
            set_backend(chosen)
            assert get_backend() is chosen
            assert chosen.describe() == "sharded:3"
        finally:
            set_backend(previous)


# ----------------------------------------------------------------------
# Makespan model
# ----------------------------------------------------------------------
class TestMakespan:
    def test_lpt_basics(self):
        assert lpt_makespan([], 4) == 0.0
        assert lpt_makespan([5, 3, 2], 1) == 10.0
        assert lpt_makespan([5, 3, 2], 8) == 5.0
        # Two cores: LPT puts 5 alone, 3+2 together.
        assert lpt_makespan([5, 3, 2], 2) == 5.0
        with pytest.raises(ValueError):
            lpt_makespan([1.0], 0)

    def test_makespan_monotone_and_calibrated(self):
        metrics = EngineMetrics()
        for shard, load in enumerate([400, 350, 300, 150]):
            metrics.count_shard_load(str(shard), load)
        metrics.iterations = 3
        model = MakespanModel(per_iteration_span=10.0)
        measured = 2.5
        projections = [
            model.project(metrics, measured, cores)
            for cores in (1, 2, 4, 16)
        ]
        assert projections[0] == pytest.approx(measured)
        for slower, faster in zip(projections, projections[1:]):
            assert faster <= slower + 1e-12
        # The floor is the largest shard plus the span: more cores than
        # shards cannot help further.
        assert model.project(metrics, measured, 16) == pytest.approx(
            model.project(metrics, measured, 64)
        )

    def test_imbalance(self):
        metrics = EngineMetrics()
        metrics.count_shard_load("0", 30)
        metrics.count_shard_load("1", 10)
        model = MakespanModel()
        assert model.imbalance(metrics) == pytest.approx(1.5)
        assert load_imbalance({"0": 30.0, "1": 10.0}) == pytest.approx(1.5)
        assert load_imbalance({}) == 1.0
        assert load_imbalance([4.0, 4.0, 4.0]) == 1.0

    def test_serial_fallback_uses_aggregate_work(self):
        metrics = EngineMetrics()
        metrics.count_edges(900)
        metrics.count_vertices(100)
        metrics.iterations = 2
        model = MakespanModel(per_iteration_span=50.0)
        cost = model.breakdown(metrics, 1.0)
        assert cost.shard_loads.tolist() == [1000.0]
        # One undecomposed shard cannot be split: projection is flat.
        assert model.project(metrics, 1.0, 8) == pytest.approx(
            model.project(metrics, 1.0, 2)
        )
