"""Unit tests for the work/span parallel cost model."""

import pytest

from repro.runtime.metrics import EngineMetrics
from repro.runtime.parallel import ParallelModel


def metrics_with(edges, iterations):
    metrics = EngineMetrics()
    metrics.count_edges(edges)
    metrics.iterations = iterations
    return metrics


class TestProjection:
    def test_single_core_is_measured_time(self):
        model = ParallelModel()
        metrics = metrics_with(1_000_000, 10)
        assert model.project(metrics, 2.0, 1) == pytest.approx(2.0)

    def test_more_cores_never_slower(self):
        model = ParallelModel()
        metrics = metrics_with(1_000_000, 10)
        t32 = model.project(metrics, 2.0, 32)
        t96 = model.project(metrics, 2.0, 96)
        assert t96 <= t32 <= 2.0

    def test_span_bounds_speedup(self):
        model = ParallelModel(per_iteration_span=1000)
        metrics = metrics_with(10_000, 10)  # work == span
        projected = model.project(metrics, 1.0, 1_000_000)
        # Fully span-bound: infinite cores cannot beat the span.
        assert projected == pytest.approx(1.0)

    def test_work_rich_runs_scale_better(self):
        model = ParallelModel()
        heavy = metrics_with(100_000_000, 10)
        light = metrics_with(100_000, 10)
        heavy_speedup = model.speedup(heavy, 1.0, 96)
        light_speedup = model.speedup(light, 1.0, 96)
        assert heavy_speedup > light_speedup

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ParallelModel(per_iteration_span=0)
        with pytest.raises(ValueError):
            ParallelModel().project(metrics_with(1, 1), 1.0, 0)

    def test_zero_work(self):
        model = ParallelModel()
        metrics = EngineMetrics()
        metrics.iterations = 0
        # Degenerate run: projection falls back to span-only behaviour.
        assert model.project(metrics, 0.5, 8) > 0


class TestBreakdown:
    def test_unit_cost(self):
        model = ParallelModel()
        cost = model.breakdown(metrics_with(1000, 1), 2.0)
        assert cost.unit_cost == pytest.approx(2.0 / cost.work_units)

    def test_span_counts_refinement_iterations(self):
        model = ParallelModel(per_iteration_span=100)
        metrics = metrics_with(100_000, 5)
        metrics.refinement_iterations = 5
        cost = model.breakdown(metrics, 1.0)
        assert cost.span_units == 1000
