"""Smoke tests for the experiment drivers (tiny configurations).

The full-scale runs live in ``benchmarks/``; here each driver is
exercised end-to-end with minimal parameters so that payload schema,
table rendering, and the CLI wrapper stay correct.
"""

import json

import pytest

from repro.bench import experiments as exp
from repro.bench.__main__ import EXPERIMENTS
from repro.bench.__main__ import main as bench_main


class TestDrivers:
    def test_table1_payload(self):
        payload = exp.experiment_table1(num_batches=2, batch_size=20)
        assert payload["experiment"] == "table1"
        assert len(payload["over_1_percent"]) == 2
        json.dumps(payload)

    def test_figure4_payload(self):
        payload = exp.experiment_figure4(num_iterations=5)
        assert len(payload["density_per_iteration"]) == 5

    def test_table5_payload(self):
        payload = exp.experiment_table5(
            algorithms=["PR"], graphs=("WK",), batch_sizes=(10,),
            num_batches=1,
        )
        assert "PR|WK|10" in payload["cells"]
        cell = payload["cells"]["PR|WK|10"]
        assert set(cell) == {"Ligra", "GB-Reset", "GraphBolt"}

    def test_table5_triangle_cell(self):
        payload = exp.experiment_table5(
            algorithms=["TC"], graphs=("WK",), batch_sizes=(10,),
            num_batches=1,
        )
        cell = payload["cells"]["TC|WK|10"]
        assert cell["Ligra"]["edges"] == cell["GB-Reset"]["edges"]
        assert cell["GraphBolt"]["edges"] < cell["Ligra"]["edges"]

    def test_figure7_payload(self):
        payload = exp.experiment_figure7(
            algorithms=["LP"], graph_name="WK", batch_sizes=(1, 10),
        )
        assert payload["series"]["LP"]["GraphBolt-edges"][0] > 0

    def test_table8_payload(self):
        payload = exp.experiment_table8(
            algorithms=["LP"], graphs=("WK",), batch_size=20,
        )
        cell = payload["detail"]["WK|LP"]
        assert {"lo", "hi", "lo_edges", "hi_edges"} <= set(cell)

    def test_table9_payload(self):
        payload = exp.experiment_table9(algorithms=["PR"], graphs=("WK",))
        assert payload["detail"]["PR|WK"]["overhead_percent"] > 0
        assert "TC|WK" in payload["detail"]

    def test_motivation_payload(self):
        payload = exp.experiment_motivation_tagging(
            graphs=("WK",), batch_sizes=(1,),
        )
        assert 0.0 < payload["detail"]["WK|1"] <= 1.0

    def test_ablation_structure_payload(self):
        payload = exp.experiment_ablation_structure(
            graph_name="WK", batch_sizes=(10,), num_batches=3,
        )
        assert payload["detail"]["10"]["speedup"] > 0

    def test_render_table(self):
        payload = exp.experiment_figure4(num_iterations=3)
        text = exp.render_table(payload)
        assert "Figure 4" in text
        assert "changed" in text


class TestBenchMain:
    def test_runs_named_experiment(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setattr(
            "repro.bench.reporting.results_dir", lambda: str(tmp_path)
        )
        monkeypatch.setitem(
            EXPERIMENTS, "figure4",
            lambda: exp.experiment_figure4(num_iterations=3),
        )
        code = bench_main(["repro.bench", "figure4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert (tmp_path / "figure4.json").exists()

    def test_rejects_unknown_experiment(self, capsys):
        assert bench_main(["repro.bench", "nonexistent"]) == 2
        assert "unknown" in capsys.readouterr().out
