"""Unit tests for mutation workload generators."""

import numpy as np
import pytest

from repro.bench.workloads import (
    mixed_stream,
    split_initial_graph,
    targeted_batch,
    uniform_batch,
)
from repro.graph.generators import rmat
from repro.graph.mutable import StreamingGraph


@pytest.fixture(scope="module")
def graph():
    return rmat(scale=8, edge_factor=6, seed=40, weighted=True)


class TestSplit:
    def test_fraction(self, graph):
        initial, src, dst, weight = split_initial_graph(graph, 0.5, seed=1)
        assert initial.num_edges == graph.num_edges // 2
        assert src.size == graph.num_edges - initial.num_edges
        assert initial.num_vertices == graph.num_vertices

    def test_partition_is_exact(self, graph):
        initial, src, dst, _ = split_initial_graph(graph, 0.3, seed=2)
        pending = set(zip(src.tolist(), dst.tolist()))
        assert initial.edge_set() | pending == graph.edge_set()
        assert not (initial.edge_set() & pending)

    def test_invalid_fraction(self, graph):
        with pytest.raises(ValueError):
            split_initial_graph(graph, 0.0)


class TestMixedStream:
    def test_paper_methodology(self, graph):
        initial, batches = mixed_stream(graph, num_batches=5,
                                        batch_size=40, seed=3)
        assert len(batches) == 5
        stream = StreamingGraph(initial)
        for batch in batches:
            assert batch.num_additions > 0
            assert batch.num_deletions > 0
            result = stream.apply_batch(batch)
            # Every mutation in the stream is applicable: additions are
            # novel, deletions target live edges.
            assert result.skipped_additions == 0
            assert result.skipped_deletions == 0

    def test_delete_fraction(self, graph):
        _, batches = mixed_stream(graph, num_batches=2, batch_size=100,
                                  delete_fraction=0.25, seed=4)
        for batch in batches:
            assert batch.num_deletions == 25


class TestUniformBatch:
    def test_sizes(self, graph):
        batch = uniform_batch(graph, 100, delete_fraction=0.3, seed=5)
        assert batch.num_deletions <= 30
        assert batch.num_additions <= 70
        assert len(batch) > 0

    def test_deterministic(self, graph):
        a = uniform_batch(graph, 50, seed=6)
        b = uniform_batch(graph, 50, seed=6)
        assert list(a.additions()) == list(b.additions())
        assert list(a.deletions()) == list(b.deletions())

    def test_deletions_target_live_edges(self, graph):
        batch = uniform_batch(graph, 60, seed=7)
        edges = graph.edge_set()
        assert all(edge in edges for edge in batch.deletions())


class TestTargetedBatch:
    def test_hi_targets_have_higher_degree_than_lo(self, graph):
        degrees = graph.out_degrees()
        hi = targeted_batch(graph, 100, "hi", seed=8)
        lo = targeted_batch(graph, 100, "lo", seed=8)
        hi_mean = degrees[hi.add_dst].mean()
        lo_mean = degrees[lo.add_dst].mean()
        assert hi_mean > 3 * max(lo_mean, 0.01)

    def test_invalid_workload(self, graph):
        with pytest.raises(ValueError):
            targeted_batch(graph, 10, "mid")

    def test_hi_deletions_point_at_hubs(self, graph):
        degrees = graph.out_degrees()
        batch = targeted_batch(graph, 100, "hi", seed=9)
        if batch.num_deletions:
            threshold = np.quantile(degrees[degrees > 0], 0.95)
            assert degrees[batch.del_dst].min() >= threshold * 0.5
