"""Tests for the perf-trajectory regression gate.

The centrepiece is the plant-a-regression self-test: inject a slowdown
into a copy of a real payload and prove the gate trips in enforce mode,
stays advisory in report mode, and stays quiet on noise inside the
thresholds.
"""

import copy
import json
import os

import pytest

from repro.bench.gate import (
    GateThresholds,
    compare_payloads,
    load_baseline,
    run_gate,
    save_baseline,
)
from repro.bench.matrix import load_table, run_matrix


@pytest.fixture(scope="module")
def payload(tmp_path_factory):
    path = tmp_path_factory.mktemp("gate") / "tiny.yaml"
    path.write_text("""
schema: 1
area: gated
axes:
  engine: [gbreset, graphbolt]
fixed:
  topology: rmat
  scale: 5
  algorithm: PR
  scenario: uniform
  batch_size: 5
  num_batches: 2
  iterations: 4
  seed: 4
gate:
  work_threshold: 0.05
  time_threshold: 0.5
""")
    return run_matrix(load_table(str(path)))


THRESHOLDS = GateThresholds(work=0.05, time=0.5)


def planted(payload, metric, factor, run_index=0):
    """A copy of ``payload`` with one cell's metric scaled by ``factor``."""
    slow = copy.deepcopy(payload)
    run = slow["runs"][run_index]
    if metric == "wall_seconds.total":
        run["timing"]["wall_seconds"]["total"] *= factor
    else:
        run["work"][metric] = int(run["work"][metric] * factor)
    return slow


class TestPlantARegression:
    def test_work_regression_trips_enforce(self, payload):
        slow = planted(payload, "edge_computations", 1.25)
        report = compare_payloads(payload, slow, THRESHOLDS,
                                  mode="enforce")
        assert not report.ok
        assert [cell.metric for cell in report.regressions] == [
            "edge_computations"]
        assert report.regressions[0].ratio == pytest.approx(1.25)

    def test_time_regression_trips_enforce(self, payload):
        slow = planted(payload, "wall_seconds.total", 3.0)
        report = compare_payloads(payload, slow, THRESHOLDS,
                                  mode="enforce")
        assert not report.ok
        assert report.regressions[0].metric == "wall_seconds.total"

    def test_noise_within_threshold_stays_quiet(self, payload):
        # +3% work and +40% wall-clock are both inside the thresholds.
        noisy = planted(payload, "edge_computations", 1.03)
        noisy = planted(noisy, "wall_seconds.total", 1.4, run_index=1)
        report = compare_payloads(payload, noisy, THRESHOLDS,
                                  mode="enforce")
        assert report.ok
        assert not report.regressions
        assert all(cell.status in ("ok", "improved")
                   for cell in report.cells)

    def test_report_mode_never_fails(self, payload):
        slow = planted(payload, "edge_computations", 2.0)
        report = compare_payloads(payload, slow, THRESHOLDS,
                                  mode="report")
        assert report.regressions
        assert report.ok  # advisory only
        assert "[report-only]" in report.format()

    def test_improvement_flagged_not_failed(self, payload):
        fast = planted(payload, "edge_computations", 0.5)
        report = compare_payloads(payload, fast, THRESHOLDS,
                                  mode="enforce")
        assert report.ok
        assert any(cell.status == "improved" for cell in report.cells)

    def test_identical_payloads_pass(self, payload):
        report = compare_payloads(payload, copy.deepcopy(payload),
                                  THRESHOLDS, mode="enforce")
        assert report.ok
        assert "verdict: PASS" in report.format()


class TestCellBookkeeping:
    def test_new_and_missing_runs_flagged(self, payload):
        current = copy.deepcopy(payload)
        renamed = current["runs"][0]
        renamed["id"] = "somewhere/else"
        report = compare_payloads(payload, current, THRESHOLDS,
                                  mode="enforce")
        statuses = {cell.status for cell in report.cells}
        assert "new" in statuses and "missing" in statuses
        assert report.ok  # churn is visible but not a perf failure

    def test_changed_config_excluded_from_comparison(self, payload):
        current = copy.deepcopy(payload)
        current["runs"][0]["config_hash"] = "f" * 16
        current["runs"][0]["work"]["edge_computations"] *= 100
        report = compare_payloads(payload, current, THRESHOLDS,
                                  mode="enforce")
        run_id = current["runs"][0]["id"]
        cells = [cell for cell in report.cells if cell.run_id == run_id]
        assert [cell.status for cell in cells] == ["changed"]
        assert report.ok

    def test_area_mismatch_rejected(self, payload):
        other = copy.deepcopy(payload)
        other["area"] = "elsewhere"
        with pytest.raises(ValueError, match="area mismatch"):
            compare_payloads(payload, other, THRESHOLDS)


class TestRunGate:
    def test_no_baseline_starts_trajectory(self, payload, tmp_path):
        assert run_gate(payload, mode="report",
                        baseline_directory=str(tmp_path)) is None

    def test_off_mode_skips(self, payload, tmp_path):
        save_baseline(payload, str(tmp_path))
        assert run_gate(payload, mode="off",
                        baseline_directory=str(tmp_path)) is None

    def test_round_trip_and_thresholds_from_payload(self, payload,
                                                    tmp_path):
        path = save_baseline(payload, str(tmp_path))
        assert os.path.basename(path) == "BENCH_gated.json"
        with open(path) as handle:
            assert json.load(handle) == load_baseline(
                "gated", str(tmp_path))
        slow = planted(payload, "edge_computations", 1.25)
        report = run_gate(slow, mode="enforce",
                          baseline_directory=str(tmp_path))
        # Thresholds came from the payload's own gate section.
        assert report.thresholds == THRESHOLDS
        assert not report.ok
        assert report.baseline_path == path

    def test_gate_against_committed_baseline_area(self, payload,
                                                  tmp_path):
        # A committed baseline gates a byte-identical rerun as PASS.
        save_baseline(payload, str(tmp_path))
        report = run_gate(copy.deepcopy(payload), mode="enforce",
                          baseline_directory=str(tmp_path))
        assert report is not None and report.ok
