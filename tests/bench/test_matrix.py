"""Tests for the declarative experiment matrix (run tables).

Covers the YAML loader/expander validation surface, the schema checks
on emitted ``BENCH_*`` payloads, the determinism pin (same YAML + seed
produces a byte-identical payload modulo timings), the hotspot_storm
mutation regime, and the equivalence pins for the legacy Table 5/6/9
drivers now routed through the run-table loader.
"""

import copy

import pytest

from repro.bench.experiments import (
    experiment_table5,
    experiment_table9,
)
from repro.bench.matrix import (
    DEFAULTS,
    MatrixError,
    SCHEMA_VERSION,
    canonical_payload,
    driver_kwargs,
    expand,
    load_table,
    payload_filename,
    run_driver,
    run_matrix,
    validate_payload,
)
from repro.graph.generators import rmat
from repro.graph.stream import hotspot_community, hotspot_storm
from repro.testing.workloads import BATCH_KINDS


def write_table(tmp_path, text, name="table.yaml"):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


TINY_TABLE = """
schema: 1
area: tiny
title: "Tiny matrix for tests"
axes:
  engine: [ligra, graphbolt]
  scenario: [uniform, hotspot_storm]
fixed:
  topology: rmat
  scale: 5
  algorithm: PR
  batch_size: 5
  num_batches: 2
  iterations: 4
  seed: 3
exclude:
  - engine: ligra
    scenario: hotspot_storm
gate:
  work_threshold: 0.05
  time_threshold: 1.0
"""

SERVING_TABLE = """
schema: 1
area: tinyserve
axes:
  admission: [coalesce]
  faults: [none, "poison:2"]
fixed:
  topology: rmat
  scale: 5
  algorithm: PR
  engine: graphbolt
  batch_size: 5
  num_batches: 3
  iterations: 4
  seed: 9
"""


@pytest.fixture(scope="module")
def tiny_payload(tmp_path_factory):
    path = write_table(tmp_path_factory.mktemp("matrix"), TINY_TABLE)
    return run_matrix(load_table(path))


class TestLoader:
    def test_bundled_tables_load(self):
        for name in ("smoke", "core", "sharded"):
            table = load_table(name)
            assert table.area == name
            assert table.runs()

    def test_unknown_axis_key(self, tmp_path):
        path = write_table(tmp_path, """
schema: 1
area: bad
axes:
  flavour: [vanilla]
""")
        with pytest.raises(MatrixError, match="unknown axes key"):
            load_table(path)

    def test_bad_vocabulary_value(self, tmp_path):
        path = write_table(tmp_path, """
schema: 1
area: bad
axes:
  engine: [turbopascal]
""")
        with pytest.raises(MatrixError, match="engine"):
            load_table(path)

    def test_unsupported_schema(self, tmp_path):
        path = write_table(tmp_path, "schema: 99\narea: bad\n")
        with pytest.raises(MatrixError, match="schema"):
            load_table(path)

    def test_serving_requires_graphbolt(self, tmp_path):
        path = write_table(tmp_path, """
schema: 1
area: bad
axes:
  engine: [ligra]
fixed:
  admission: coalesce
""")
        with pytest.raises(MatrixError, match="GraphBolt-based"):
            load_table(path)

    def test_axis_and_fixed_conflict(self, tmp_path):
        path = write_table(tmp_path, """
schema: 1
area: bad
axes:
  engine: [ligra]
fixed:
  engine: graphbolt
""")
        with pytest.raises(MatrixError, match="both axes and fixed"):
            load_table(path)

    def test_missing_table(self):
        with pytest.raises(MatrixError, match="not found"):
            load_table("no_such_matrix")


class TestExpansion:
    def test_exclude_and_defaults(self, tmp_path):
        path = write_table(tmp_path, TINY_TABLE)
        specs = expand(load_table(path))
        # 2 engines x 2 scenarios minus the excluded ligra/hotspot cell.
        assert [spec.run_id for spec in specs] == [
            "ligra/uniform",
            "graphbolt/uniform",
            "graphbolt/hotspot_storm",
        ]
        for spec in specs:
            # Unlisted knobs fall back to the documented defaults.
            assert spec.config["delete_fraction"] == (
                DEFAULTS["delete_fraction"])
            assert spec.config["scale"] == 5

    def test_run_ids_use_axis_order(self):
        # 2 engines x 2 scenarios x 2 admissions x 2 faults x 2 slos
        # = 32, minus the ligra cells excluded from serving-implying
        # axes (coalesce, poison, soak) leaves 2 ligra + 16 graphbolt.
        specs = expand(load_table("smoke"))
        assert len(specs) == 18
        assert len({spec.run_id for spec in specs}) == 18


class TestPayloadSchema:
    def test_valid_payload(self, tiny_payload):
        validate_payload(tiny_payload)
        assert tiny_payload["schema_version"] == SCHEMA_VERSION
        assert tiny_payload["num_runs"] == 3
        assert payload_filename(tiny_payload["area"]) == "BENCH_tiny.json"

    @pytest.mark.parametrize("breaker, match", [
        (lambda p: p.pop("runs"), "missing"),
        (lambda p: p.update(schema_version=99), "schema_version"),
        (lambda p: p.update(num_runs=7), "num_runs"),
        (lambda p: p["runs"][0].update(config_hash="0" * 16),
         "config_hash"),
        (lambda p: p["runs"][0]["timing"]["wall_seconds"].pop("p99"),
         "p99"),
        (lambda p: p["runs"][0].update(mode="psychic"), "mode"),
    ])
    def test_broken_payloads_rejected(self, tiny_payload, breaker, match):
        broken = copy.deepcopy(tiny_payload)
        breaker(broken)
        with pytest.raises(MatrixError, match=match):
            validate_payload(broken)


class TestDeterminismPin:
    def test_engine_matrix_byte_identical_modulo_timings(self, tmp_path):
        path = write_table(tmp_path, TINY_TABLE)
        table = load_table(path)
        first = run_matrix(table)
        second = run_matrix(table)
        assert canonical_payload(first) == canonical_payload(second)

    def test_serving_matrix_byte_identical_modulo_timings(self, tmp_path):
        path = write_table(tmp_path, SERVING_TABLE)
        table = load_table(path)
        first = run_matrix(table)
        second = run_matrix(table)
        assert first["runs"][0]["mode"] == "serving"
        assert canonical_payload(first) == canonical_payload(second)

    def test_canonical_payload_strips_only_timings(self, tiny_payload):
        noisy = copy.deepcopy(tiny_payload)
        noisy["runs"][0]["timing"]["wall_seconds"]["total"] = 123.456
        assert canonical_payload(noisy) == canonical_payload(tiny_payload)
        changed = copy.deepcopy(tiny_payload)
        changed["runs"][0]["work"]["edge_computations"] = 10 ** 9
        assert canonical_payload(changed) != canonical_payload(
            tiny_payload)


class TestHotspotStorm:
    @pytest.fixture(scope="class")
    def graph(self):
        return rmat(scale=7, edge_factor=6, seed=21, weighted=True)

    def test_all_mutations_inside_community(self, graph):
        lo, hi = hotspot_community(graph.num_vertices, seed=17)
        batches = hotspot_storm(graph, num_batches=4, batch_size=20,
                                seed=17)
        assert len(batches) == 4
        for batch in batches:
            assert batch.num_additions > 0
            for u, v, _ in batch.additions():
                assert lo <= u < hi and lo <= v < hi
            for u, v in batch.deletions():
                assert lo <= u < hi and lo <= v < hi

    def test_deterministic(self, graph):
        def fingerprint(batch):
            return (sorted((u, v) for u, v, _ in batch.additions()),
                    sorted(batch.deletions()))

        first = hotspot_storm(graph, num_batches=3, batch_size=15, seed=5)
        second = hotspot_storm(graph, num_batches=3, batch_size=15, seed=5)
        assert list(map(fingerprint, first)) == list(
            map(fingerprint, second))
        other = hotspot_storm(graph, num_batches=3, batch_size=15, seed=6)
        assert list(map(fingerprint, first)) != list(
            map(fingerprint, other))

    def test_deletions_target_live_edges(self, graph):
        live = set(zip(*[arr.tolist() for arr in graph.all_edges()[:2]]))
        batches = hotspot_storm(graph, num_batches=3, batch_size=30,
                                delete_fraction=0.5, seed=2)
        for batch in batches:
            for u, v in batch.deletions():
                assert (u, v) in live
            for u, v, _ in batch.additions():
                if u != v:
                    live.add((u, v))
            for edge in batch.deletions():
                live.discard(tuple(edge))

    def test_fuzzer_kind_registered(self):
        assert "hotspot_storm" in BATCH_KINDS


class TestDriverEquivalence:
    def test_table5_kwargs_match_legacy_defaults(self):
        assert driver_kwargs("table5") == {
            "algorithms": ["PR", "BP", "CF", "CoEM", "LP", "TC"],
            "graphs": ["WK", "UK", "TW", "TT", "FT"],
            "batch_sizes": [10, 100, 1000],
            "num_batches": 2,
            "seed": 5,
        }

    def test_table6_kwargs_match_legacy_defaults(self):
        assert driver_kwargs("table6") == {
            "algorithms": ["PR", "BP", "CF", "CoEM", "LP"],
            "cores": [32, 96],
            "batch_size": 100,
            "seed": 66,
        }

    def test_table9_kwargs_match_legacy_defaults(self):
        assert driver_kwargs("table9") == {
            "algorithms": ["PR", "BP", "CF", "CoEM", "LP"],
            "graphs": ["WK", "UK", "TW", "TT", "FT", "YH"],
        }

    def test_table9_payload_preserved(self):
        via_matrix = run_driver("table9", algorithms=["PR"],
                                graphs=["WK"])
        direct = experiment_table9(algorithms=["PR"], graphs=["WK"])
        # Table 9 measures memory, not time: payloads are fully
        # deterministic and must match exactly.
        assert via_matrix == direct

    def test_table5_payload_preserved_modulo_timings(self):
        kwargs = dict(algorithms=["PR"], graphs=["WK"],
                      batch_sizes=[10], num_batches=1)
        via_matrix = run_driver("table5", **kwargs)
        direct = experiment_table5(**kwargs)
        assert via_matrix["headers"] == direct["headers"]
        assert set(via_matrix["cells"]) == set(direct["cells"])
        for key, cell in via_matrix["cells"].items():
            for engine, stats in cell.items():
                assert stats["edges"] == (
                    direct["cells"][key][engine]["edges"]), (key, engine)

    def test_run_driver_rejects_generic_table(self):
        with pytest.raises(MatrixError, match="not a driver table"):
            run_driver("smoke")


class TestSLOAxis:
    def table(self, slo_value):
        return f"""
schema: 1
area: tinyslo
axes:
  slo: [{slo_value}]
fixed:
  topology: rmat
  scale: 5
  algorithm: PR
  engine: graphbolt
  batch_size: 5
  num_batches: 3
  iterations: 4
  seed: 9
"""

    def test_unresolvable_slo_plan_rejected(self, tmp_path):
        path = write_table(tmp_path, self.table("no_such_plan"))
        with pytest.raises(MatrixError, match="does not resolve"):
            load_table(path)

    def test_slo_axis_implies_serving_mode(self, tmp_path):
        path = write_table(tmp_path, self.table("soak"))
        payload = run_matrix(load_table(path))
        (run,) = payload["runs"]
        assert run["mode"] == "serving"
        validate_payload(payload)

    def test_slo_run_reports_alert_work(self, tmp_path):
        """Deterministic observer mode: wall-clock signals are
        dropped, so a healthy run's SLO column is exactly zero --
        and part of the gated canonical payload."""
        path = write_table(tmp_path, self.table("soak"))
        table = load_table(path)
        first = run_matrix(table)
        (run,) = first["runs"]
        assert run["work"]["slo_alerts"] == 0
        assert run["work"]["slo_firing"] == "-"
        assert canonical_payload(first) == canonical_payload(
            run_matrix(table))

    def test_slo_requires_graphbolt(self, tmp_path):
        path = write_table(tmp_path, self.table("soak").replace(
            "engine: graphbolt", "engine: ligra"))
        with pytest.raises(MatrixError, match="GraphBolt-based"):
            load_table(path)


REPLICATION_TABLE = """
schema: 1
area: tinyrepl
axes:
  replication: ["off", 2-replica, 2-replica+lag-fault]
fixed:
  topology: rmat
  scale: 5
  algorithm: PR
  engine: graphbolt
  batch_size: 5
  num_batches: 4
  iterations: 3
  seed: 3
"""


class TestReplicationAxis:
    def test_parse_replication_vocabulary(self):
        from repro.bench.matrix import _parse_replication

        assert _parse_replication("off") == (0, False)
        assert _parse_replication("2-replica") == (2, False)
        assert _parse_replication("3-replica+lag-fault") == (3, True)
        for bad in ("on", "0-replica", "replica", "2-replica+chaos",
                    "x-replica"):
            with pytest.raises(MatrixError, match="replication plan"):
                _parse_replication(bad)

    def test_bundled_replication_table_expands(self):
        table = load_table("replication")
        assert table.area == "replication"
        specs = expand(table)
        # 3 replication plans x 2 admission policies x 2 fault plans,
        # minus the excluded off/chaos cells (chaos wraps replica
        # links; nothing to wrap when replication is off).
        assert len(specs) == 10
        assert len({spec.run_id for spec in specs}) == 10
        assert not any(spec.config["replication"] == "off"
                       and spec.config["faults"] == "chaos"
                       for spec in specs)

    def test_replication_implies_serving_and_reports_work(self,
                                                          tmp_path):
        path = write_table(tmp_path, REPLICATION_TABLE)
        table = load_table(path)
        payload = run_matrix(table)
        runs = {run["config"]["replication"]: run
                for run in payload["runs"]}
        assert runs["off"]["mode"] == "engine"
        assert "replication_lag_max" not in runs["off"]["work"]
        for plan in ("2-replica", "2-replica+lag-fault"):
            work = runs[plan]["work"]
            assert runs[plan]["mode"] == "serving"
            assert work["replicas_converged"] == 1
            assert work["fence_rejections"] == 0
        # The planted delivery-lag fault is visible in the work
        # column -- and only there.
        assert runs["2-replica"]["work"]["replication_lag_max"] == 0
        assert runs["2-replica+lag-fault"]["work"][
            "replication_lag_max"] > 0
        # Count-based columns: the whole payload is gate-stable.
        assert canonical_payload(payload) == canonical_payload(
            run_matrix(table))
