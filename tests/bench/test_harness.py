"""Unit tests for the streaming runners and measurement harness."""

import numpy as np
import pytest

from repro.algorithms import PageRank
from repro.bench.harness import (
    DeltaRunner,
    GraphBoltRunner,
    LigraRunner,
    run_stream,
)
from repro.bench.workloads import uniform_batch
from repro.graph.generators import rmat


@pytest.fixture(scope="module")
def graph():
    return rmat(scale=7, edge_factor=5, seed=41, weighted=True)


@pytest.fixture(scope="module")
def batches(graph):
    return [uniform_batch(graph, 20, seed=s) for s in range(3)]


class TestRunnersAgree:
    def test_all_three_produce_same_values(self, graph, batches):
        results = {}
        for runner in (
            LigraRunner(lambda: PageRank(), 8),
            DeltaRunner(lambda: PageRank(), 8),
            GraphBoltRunner(lambda: PageRank(), 8),
        ):
            results[runner.name] = run_stream(runner, graph, batches)
        ligra = results["Ligra"].final_values
        for name, result in results.items():
            assert np.allclose(result.final_values, ligra, atol=1e-7), name

    def test_rp_mode_renames_runner(self):
        runner = GraphBoltRunner(lambda: PageRank(),
                                 mode="retract_propagate")
        assert runner.name == "GraphBolt-RP"


class TestMeasurement:
    def test_per_batch_records(self, graph, batches):
        result = run_stream(GraphBoltRunner(lambda: PageRank(), 8),
                            graph, batches)
        assert len(result.batches) == 3
        assert result.setup_seconds > 0
        for batch in result.batches:
            assert batch.total_seconds >= batch.seconds >= 0
            assert batch.edge_computations > 0

    def test_aggregates(self, graph, batches):
        result = run_stream(DeltaRunner(lambda: PageRank(), 8),
                            graph, batches)
        assert result.total_apply_seconds == pytest.approx(
            sum(b.seconds for b in result.batches)
        )
        assert result.mean_apply_seconds == pytest.approx(
            result.total_apply_seconds / 3
        )
        assert result.total_edge_computations == sum(
            b.edge_computations for b in result.batches
        )

    def test_as_dict_is_json_ready(self, graph, batches):
        import json

        result = run_stream(LigraRunner(lambda: PageRank(), 8),
                            graph, batches)
        payload = result.as_dict()
        json.dumps(payload)
        assert payload["runner"] == "Ligra"

    def test_structure_adjustment_excluded_from_compute(self, graph):
        batch = uniform_batch(graph, 10, seed=11)
        result = run_stream(LigraRunner(lambda: PageRank(), 8),
                            graph, [batch])
        measured = result.batches[0]
        assert measured.total_seconds > measured.seconds

    def test_empty_stream(self, graph):
        result = run_stream(LigraRunner(lambda: PageRank(), 4), graph, [])
        assert result.total_apply_seconds == 0.0
        assert result.mean_apply_seconds == 0.0
