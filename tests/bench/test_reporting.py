"""Unit tests for experiment reporting."""

import json
import os

from repro.bench.reporting import (
    format_table,
    load_results,
    save_results,
    speedup,
)


class TestFormatTable:
    def test_alignment(self):
        table = format_table(
            ["Name", "Value"], [["a", 1.0], ["bbbb", 123456.0]],
            title="Demo",
        )
        lines = table.splitlines()
        assert lines[0] == "Demo"
        assert "Name" in lines[1]
        widths = {len(line) for line in lines[1:] if line.strip()}
        # Header and separator line up.
        assert len(lines[2]) == len(lines[1])

    def test_float_formatting(self):
        table = format_table(["x"], [[0.00012345], [1234567.0], [0.5], [0]])
        assert "0.000123" in table
        assert "1.23e+06" in table
        assert "0.500" in table

    def test_empty_rows(self):
        table = format_table(["A", "B"], [])
        assert "A" in table


class TestSpeedup:
    def test_basic(self):
        assert speedup(10.0, 2.0) == 5.0

    def test_zero_guard(self):
        assert speedup(1.0, 0.0) == float("inf")


class TestPersistence:
    def test_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            "repro.bench.reporting.results_dir", lambda: str(tmp_path)
        )
        path = save_results("demo", {"a": [1, 2], "b": "x"})
        assert os.path.exists(path)
        assert load_results("demo") == {"a": [1, 2], "b": "x"}

    def test_missing_returns_none(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            "repro.bench.reporting.results_dir", lambda: str(tmp_path)
        )
        assert load_results("absent") is None
