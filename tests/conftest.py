"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import bipartite_graph, rmat
from repro.graph.mutation import MutationBatch


@pytest.fixture
def tiny_graph() -> CSRGraph:
    """The 5-vertex graph of the paper's Figure 2a."""
    return CSRGraph.from_edges(
        [(0, 1), (1, 2), (2, 0), (2, 1), (3, 2), (3, 4), (4, 3)],
        num_vertices=5,
    )


@pytest.fixture
def small_graph() -> CSRGraph:
    """A 256-vertex weighted RMAT graph."""
    return rmat(scale=8, edge_factor=6, seed=3, weighted=True)


@pytest.fixture
def medium_graph() -> CSRGraph:
    """A 512-vertex weighted RMAT graph."""
    return rmat(scale=9, edge_factor=8, seed=5, weighted=True)


@pytest.fixture
def ratings_graph() -> CSRGraph:
    """A user-item bipartite graph for collaborative filtering."""
    return bipartite_graph(num_users=100, num_items=50, edges_per_user=5,
                           seed=7)


def make_random_batch(graph: CSRGraph, rng: np.random.Generator,
                      num_adds: int = 20, num_dels: int = 20,
                      weighted: bool = True) -> MutationBatch:
    """Random mixed batch: uniform additions + deletions of live edges."""
    num_vertices = graph.num_vertices
    adds = [
        (int(rng.integers(0, num_vertices)), int(rng.integers(0, num_vertices)))
        for _ in range(num_adds)
    ]
    src, dst, _ = graph.all_edges()
    count = min(num_dels, src.size)
    idx = rng.choice(src.size, size=count, replace=False) if count else []
    dels = [(int(src[i]), int(dst[i])) for i in idx]
    weights = (
        (rng.random(len(adds)) + 0.5).tolist() if weighted
        else [1.0] * len(adds)
    )
    return MutationBatch.from_edges(additions=adds, deletions=dels,
                                    add_weights=weights)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
