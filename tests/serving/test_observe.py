"""Tests for the serving/observability glue (``ServingObserver``).

Covers the PlantedLatency fault, wide events flowing out of the real
serving loop (with valid trace exemplars when tracing is on), SLO
ticks riding the applied-batch index, and the breaker-timeline pin:
a scripted poison/restore run's journaled health records reconstruct
**exactly** the breaker's own ``BreakerTransition`` history.
"""

import pytest

from repro.algorithms import PageRank
from repro.graph.generators import rmat
from repro.graph.mutation import MutationBatch
from repro.obs import trace
from repro.obs.journal import JsonlJournal, read_journal
from repro.obs.registry import scoped_registry
from repro.obs.slo import SLO, RecordingSink, SLOEvaluator
from repro.obs.trace import Tracer
from repro.recovery import RecoveryManager
from repro.serving import (
    BreakerConfig,
    PlantedLatency,
    ResilientAnalyticsServer,
    ServingObserver,
    StreamingAnalyticsServer,
)
from repro.serving.observe import WideEventEmitter
from tests.conftest import make_random_batch


@pytest.fixture
def graph():
    return rmat(scale=7, edge_factor=5, seed=91, weighted=True)


def plain_server(graph, **kwargs):
    kwargs.setdefault("approx_iterations", 3)
    return StreamingAnalyticsServer(lambda: PageRank(), graph, **kwargs)


def growth_poison_check(values):
    if values.shape[0] > 128:
        return f"unexpected growth to {values.shape[0]} vertices"
    return None


def poison_batch():
    return MutationBatch.from_edges(additions=[(0, 1)], grow_to=200)


def fast_slo():
    """Fires on the first violating tick (fast=1/2/0.1=5.0x,
    slow=1/3/0.1~=3.3x over the 3-sample partial window)."""
    return SLO(name="plant-latency", signal="ingest_latency", op="<",
               threshold=1.0, budget=0.1, fast_window=2, slow_window=4,
               fast_burn=5.0, slow_burn=2.5)


class TestPlantedLatency:
    def test_parse_cli_form(self):
        plant = PlantedLatency.parse("10:9.9")
        assert plant == PlantedLatency(from_index=10, seconds=9.9)

    @pytest.mark.parametrize("spec", ["10", "ten:1.0", "3:fast"])
    def test_parse_rejects_malformed_specs(self, spec):
        with pytest.raises(ValueError):
            PlantedLatency.parse(spec)


class TestObserverOnServingLoop:
    def observed(self, graph, rng, batches=4, **observer_kwargs):
        observer = ServingObserver(**observer_kwargs)
        resilient = ResilientAnalyticsServer(plain_server(graph),
                                             observer=observer)
        for _ in range(batches):
            resilient.submit(make_random_batch(graph, rng, 4, 4))
        return resilient, observer

    def test_planted_fault_fires_through_the_real_loop(self, graph,
                                                       rng):
        with scoped_registry():
            sink = RecordingSink()
            self.observed(
                graph, rng, batches=4,
                evaluator=SLOEvaluator([fast_slo()], sink=sink),
                planted_latency=PlantedLatency(from_index=2,
                                               seconds=9.9),
            )
            firing = [a for a in sink.alerts if a.state == "firing"]
            assert [(a.slo, a.index) for a in firing] == [
                ("plant-latency", 2)]
            assert firing[0].value == pytest.approx(9.9)

    def test_deterministic_mode_drops_wall_clock_signals(self, graph,
                                                         rng):
        with scoped_registry():
            sink = RecordingSink()
            _, observer = self.observed(
                graph, rng, batches=4,
                evaluator=SLOEvaluator([fast_slo()], sink=sink),
                planted_latency=PlantedLatency(from_index=0,
                                               seconds=9.9),
                deterministic=True,
            )
            # The latency SLO is inert: its signal never arrives.
            assert sink.alerts == []
            assert observer.batches_observed == 4

    def test_batch_wide_events_carry_the_dimensions(self, graph, rng):
        with scoped_registry():
            emitter = WideEventEmitter()
            self.observed(graph, rng, batches=3, emitter=emitter)
            events = emitter.events(kind="batch")
            assert [e["index"] for e in events] == [0, 1, 2]
            for event in events:
                assert event["engine"] == "graphbolt"
                assert event["ok"] is True
                assert event["breaker_state"] == "closed"
                assert event["mutations"] == 8
                assert event["samples"]["ingest_latency"] >= 0.0
                assert event["trace_on"] is False
                assert event["exemplar_span"] is None

    def test_query_wide_events_and_latency_folding(self, graph, rng):
        with scoped_registry():
            emitter = WideEventEmitter()
            evaluator = SLOEvaluator([
                SLO(name="query-bound", signal="query_latency", op="<",
                    threshold=10.0)])
            resilient, observer = self.observed(
                graph, rng, batches=1, emitter=emitter,
                evaluator=evaluator)
            resilient.query()
            (query,) = emitter.events(kind="query")
            assert query["degraded"] is False
            assert query["seconds"] >= 0.0
            assert query["deadline_budget"] is None
            # Queries never tick the evaluator; the latency folds into
            # the next batch tick.
            assert evaluator.ticks == 1
            resilient.submit(make_random_batch(graph, rng, 4, 4))
            assert evaluator.ticks == 2
            (row,) = evaluator.status()
            assert row["ticks"] == 1  # the post-query tick had the signal
            assert observer.queries_observed == 1

    def test_exemplar_resolves_in_the_trace_buffer(self, graph, rng):
        """Acceptance pin: with tracing on, every batch wide event's
        exemplar is a real span id recorded while the batch applied."""
        with scoped_registry():
            emitter = WideEventEmitter()
            tracer = Tracer(capacity=4096)
            with trace.activated(tracer):
                self.observed(graph, rng, batches=3, emitter=emitter)
            span_ids = {event["id"] for event in tracer.events()}
            events = emitter.events(kind="batch")
            assert len(events) == 3
            previous_mark = -1
            for event in events:
                assert event["trace_on"] is True
                exemplar = event["exemplar_span"]
                assert exemplar in span_ids
                assert exemplar > previous_mark  # this batch's spans
                previous_mark = exemplar

    def test_no_observer_means_no_registry_traffic(self, graph, rng):
        with scoped_registry() as registry:
            resilient = ResilientAnalyticsServer(plain_server(graph))
            resilient.submit(make_random_batch(graph, rng, 4, 4))
            assert resilient.observer is None
            assert "obs.wide_events" not in registry.names()


class TestHealthSeq:
    def test_seq_is_monotonic_from_zero(self, graph, rng):
        resilient = ResilientAnalyticsServer(plain_server(graph))
        snapshots = []
        for _ in range(3):
            resilient.submit(make_random_batch(graph, rng, 4, 4))
            snapshots.append(resilient.health())
        assert [s.seq for s in snapshots] == [0, 1, 2]

    def test_journaled_seq_survives_roundtrip(self, graph, rng,
                                              tmp_path):
        path = str(tmp_path / "health.jsonl")
        resilient = ResilientAnalyticsServer(plain_server(graph))
        with JsonlJournal.open(path) as journal:
            for _ in range(3):
                resilient.submit(make_random_batch(graph, rng, 4, 4))
                resilient.record_health(journal)
        records = read_journal(path, record_type="health")
        assert [r["seq"] for r in records] == [0, 1, 2]


class TestBreakerTimelinePin:
    def test_journal_timeline_matches_transition_history(
            self, graph, rng, tmp_path):
        """Satellite pin: replay the journaled breaker states of a
        poison/restore run and recover the breaker's own transition
        history exactly -- same states, same order, chained."""
        manager = RecoveryManager(str(tmp_path), checkpoint_every=100,
                                  poison_check=growth_poison_check)
        resilient = ResilientAnalyticsServer(
            plain_server(graph, recovery=manager),
            breaker=BreakerConfig(quarantine_threshold=2,
                                  cooldown_submits=2),
        )
        path = str(tmp_path / "health.jsonl")
        with JsonlJournal.open(path) as journal:
            resilient.record_health(journal)  # pre-storm baseline
            # Journal a snapshot the instant the breaker moves, so the
            # timeline catches transitions that come and go within one
            # submit (open -> half_open -> closed on a probe pump).
            resilient.breaker.watch_transitions(
                lambda *_: resilient.record_health(journal))
            # The storm: two poison batches trip the breaker OPEN ...
            for _ in range(2):
                resilient.submit(poison_batch())
            # ... cooldown elapses over deferred good batches, a probe
            # succeeds, and the breaker CLOSES again.
            for _ in range(4):
                resilient.submit(make_random_batch(graph, rng, 4, 4))
        assert resilient.breaker.state == "closed"
        transitions = resilient.breaker.transitions
        assert transitions, "the storm must actually engage the breaker"

        records = read_journal(path, record_type="health")
        journaled = []
        for record in records:
            state = record["breaker_state"]
            if not journaled or journaled[-1] != state:
                journaled.append(state)
        # The deduplicated journal timeline IS the transition history.
        assert journaled == ["closed"] + [t.to_state
                                         for t in transitions]
        # And the history itself chains: each hop leaves from where
        # the previous one landed.
        previous = "closed"
        for transition in transitions:
            assert transition.from_state == previous
            previous = transition.to_state
        manager.close()
