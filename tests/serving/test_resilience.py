"""Tests for the overload-resilience layer.

Three surfaces, per ``docs/operations.md``:

- admission control (block / shed-oldest / coalesce, with durable
  skip-marks so crash replay agrees with the live loop);
- deadline-budgeted queries (degraded iff the window is incomplete,
  values identical to a truncated run);
- the degradation circuit breaker (count-based, so every test here is
  a deterministic property of its event sequence -- no sleeps).
"""

import json

import numpy as np
import pytest

from repro.algorithms import PageRank
from repro.graph.generators import rmat
from repro.graph.mutation import MutationBatch
from repro.obs.journal import JsonlJournal
from repro.recovery import RecoveryManager
from repro.runtime.deadline import StepDeadline
from repro.serving import (
    ADMISSION_POLICIES,
    BreakerConfig,
    CircuitBreaker,
    ResilientAnalyticsServer,
    StreamingAnalyticsServer,
)
from repro.testing.faults import InjectedFault, scoped_failpoints
from repro.testing.oracle import compare_snapshots
from repro.testing.workloads import generate_workload
from tests.conftest import make_random_batch


@pytest.fixture
def graph():
    return rmat(scale=7, edge_factor=5, seed=91, weighted=True)


def plain_server(graph, **kwargs):
    kwargs.setdefault("approx_iterations", 3)
    return StreamingAnalyticsServer(lambda: PageRank(), graph, **kwargs)


def growth_poison_check(values):
    """Test poison rule: these workloads never grow past 128 vertices."""
    if values.shape[0] > 128:
        return f"unexpected growth to {values.shape[0]} vertices"
    return None


#: A batch the growth poison check always quarantines.
def poison_batch():
    return MutationBatch.from_edges(additions=[(0, 1)], grow_to=200)


# ----------------------------------------------------------------------
# Circuit breaker: property-style state-machine tests
# ----------------------------------------------------------------------
class TestBreakerConfig:
    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            BreakerConfig(quarantine_threshold=0)
        with pytest.raises(ValueError):
            BreakerConfig(slo_threshold=0)
        with pytest.raises(ValueError):
            BreakerConfig(cooldown_submits=0)
        with pytest.raises(ValueError):
            BreakerConfig(degraded_approx_iterations=0)

    def test_block_cannot_be_the_degraded_policy(self):
        with pytest.raises(ValueError):
            BreakerConfig(degraded_admission="block")


class TestBreakerStateMachine:
    def test_trips_after_consecutive_quarantines(self):
        breaker = CircuitBreaker(BreakerConfig(quarantine_threshold=3))
        breaker.record_quarantine()
        breaker.record_quarantine()
        assert breaker.state == "closed"
        breaker.record_quarantine()
        assert breaker.state == "open"
        assert not breaker.allows_apply()

    def test_success_resets_the_quarantine_streak(self):
        breaker = CircuitBreaker(BreakerConfig(quarantine_threshold=2))
        for _ in range(5):  # never two in a row
            breaker.record_quarantine()
            breaker.record_success()
        assert breaker.state == "closed"

    def test_latency_slo_trips(self):
        breaker = CircuitBreaker(
            BreakerConfig(latency_slo_s=0.5, slo_threshold=2)
        )
        breaker.record_latency(0.9)
        breaker.record_latency(0.1)  # within SLO: streak resets
        breaker.record_latency(0.9)
        assert breaker.state == "closed"
        breaker.record_latency(0.9)
        assert breaker.state == "open"

    def test_cooldown_probe_success_restores(self):
        breaker = CircuitBreaker(
            BreakerConfig(quarantine_threshold=1, cooldown_submits=2)
        )
        breaker.record_quarantine()
        assert breaker.state == "open"
        breaker.note_deferred()
        assert breaker.state == "open"
        breaker.note_deferred()
        assert breaker.state == "half_open"
        assert breaker.wants_probe()
        breaker.record_probe(ok=True)
        assert breaker.state == "closed"
        assert breaker.allows_apply()

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        breaker = CircuitBreaker(
            BreakerConfig(quarantine_threshold=1, cooldown_submits=2)
        )
        breaker.record_quarantine()
        breaker.note_deferred()
        breaker.note_deferred()
        breaker.record_probe(ok=False)
        assert breaker.state == "open"
        # The cooldown restarts from zero after a failed probe.
        breaker.note_deferred()
        assert breaker.state == "open"
        breaker.note_deferred()
        assert breaker.state == "half_open"

    def test_disabled_breaker_never_trips(self):
        breaker = CircuitBreaker(BreakerConfig(enabled=False))
        for _ in range(50):
            breaker.record_quarantine()
        assert breaker.state == "closed"
        assert breaker.allows_apply()
        assert not breaker.wants_probe()

    def test_transition_sequence_is_a_pure_function_of_events(self):
        def drive(breaker):
            breaker.record_quarantine()
            breaker.record_quarantine()
            breaker.note_deferred()
            breaker.note_deferred()
            breaker.record_probe(ok=False)
            breaker.note_deferred()
            breaker.note_deferred()
            breaker.record_probe(ok=True)
            return [(t.from_state, t.to_state) for t in breaker.transitions]

        config = BreakerConfig(quarantine_threshold=2, cooldown_submits=2)
        first = drive(CircuitBreaker(config))
        second = drive(CircuitBreaker(config))
        assert first == second == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]

    def test_restore_budget_formula(self):
        breaker = CircuitBreaker(
            BreakerConfig(quarantine_threshold=2, cooldown_submits=2)
        )
        # threshold trips + one probe per cooldown period afterwards.
        assert breaker.restore_budget(2) == 3
        assert breaker.restore_budget(12) == 2 + 5 + 1
        disabled = CircuitBreaker(BreakerConfig(enabled=False))
        assert disabled.restore_budget(12) == 12


# ----------------------------------------------------------------------
# Admission policies
# ----------------------------------------------------------------------
class TestAdmission:
    def test_policy_and_capacity_validated(self, graph):
        with pytest.raises(ValueError):
            ResilientAnalyticsServer(plain_server(graph),
                                     admission="drop-newest")
        with pytest.raises(ValueError):
            ResilientAnalyticsServer(plain_server(graph),
                                     queue_capacity=0)
        assert set(ADMISSION_POLICIES) == {
            "block", "shed-oldest", "coalesce"
        }

    def test_rejected_batch_leaves_no_trace(self, graph, tmp_path):
        manager = RecoveryManager(str(tmp_path))
        resilient = ResilientAnalyticsServer(
            plain_server(graph, recovery=manager), max_growth=0,
        )
        bogus_delete = MutationBatch.from_edges(deletions=[(0, 9999)])
        with pytest.raises(ValueError):
            resilient.submit(bogus_delete)
        with pytest.raises(ValueError):  # growth beyond the budget
            resilient.submit(MutationBatch.from_edges(grow_to=500))
        assert resilient.rejected == 2
        assert resilient.submitted == 0
        assert manager.wal.next_seq == 0  # nothing ever logged
        manager.close()

    def test_block_backpressure_is_equivalent_and_bounded(self, graph,
                                                          rng):
        sequential = plain_server(graph)
        resilient = ResilientAnalyticsServer(
            plain_server(graph), queue_capacity=2, admission="block",
        )
        for _ in range(6):
            batch = make_random_batch(sequential.graph, rng, 8, 8)
            sequential.ingest(batch)
            resilient.submit(batch, pump=False)
            # The submitter paid for the overflow synchronously.
            assert resilient.queue_depth <= 2
        resilient.drain()
        assert resilient.queue_depth == 0
        assert resilient.applied == 6 and resilient.shed == 0
        assert np.array_equal(resilient.approximate_values,
                              sequential.approximate_values)

    def test_shed_oldest_drops_head_and_serves_survivors(self, graph,
                                                         rng):
        batches = [make_random_batch(graph, rng, 8, 8) for _ in range(5)]
        resilient = ResilientAnalyticsServer(
            plain_server(graph), queue_capacity=2,
            admission="shed-oldest",
        )
        for batch in batches:
            resilient.submit(batch, pump=False)
        resilient.drain()
        assert resilient.shed == 3 and resilient.applied == 2
        survivors = plain_server(graph)
        for batch in batches[3:]:
            survivors.ingest(batch)
        assert np.array_equal(resilient.approximate_values,
                              survivors.approximate_values)

    def test_durable_shed_is_skip_marked_and_replayable(self, graph,
                                                        rng, tmp_path):
        batches = [make_random_batch(graph, rng, 8, 8) for _ in range(5)]
        manager = RecoveryManager(str(tmp_path), checkpoint_every=100)
        resilient = ResilientAnalyticsServer(
            plain_server(graph, recovery=manager), queue_capacity=2,
            admission="shed-oldest",
        )
        for batch in batches:
            resilient.submit(batch, pump=False)
        resilient.drain()
        # Oldest three shed with a durable mark; none of them is poison.
        assert manager.quarantined == frozenset({0, 1, 2})
        assert all(reason.startswith("shed:")
                   for reason in manager.quarantine_reasons().values())
        assert manager.poison_quarantined() == frozenset()
        live = resilient.approximate_values.copy()
        manager.close()
        # A cold replay of the ledger agrees with the live loop.
        recovered = RecoveryManager(str(tmp_path)).recover(
            lambda: PageRank()
        )
        assert np.array_equal(recovered.approximate_values, live)
        recovered.recovery.close()

    def test_durable_coalesce_supersedes_constituents(self, graph, rng,
                                                      tmp_path):
        manager = RecoveryManager(str(tmp_path), checkpoint_every=100)
        sequential = plain_server(graph)
        resilient = ResilientAnalyticsServer(
            plain_server(graph, recovery=manager), queue_capacity=2,
            admission="coalesce",
        )
        for _ in range(5):
            batch = make_random_batch(sequential.graph, rng, 8, 8)
            sequential.ingest(batch)
            resilient.submit(batch, pump=False)
        resilient.drain()
        # Every original record is durably superseded by a merged one.
        assert frozenset(range(5)) <= manager.quarantined
        assert all(
            manager.quarantine_reasons()[seq].startswith("superseded:")
            for seq in range(5)
        )
        assert manager.poison_quarantined() == frozenset()
        assert resilient.coalesced == 4
        # Lossless: the merged stream serves the sequential answer.
        verdict = compare_snapshots(resilient.approximate_values,
                                    sequential.approximate_values,
                                    tolerance=1e-9)
        assert verdict is None, verdict
        live = resilient.approximate_values.copy()
        manager.close()
        recovered = RecoveryManager(str(tmp_path)).recover(
            lambda: PageRank()
        )
        assert np.array_equal(recovered.approximate_values, live)
        recovered.recovery.close()

    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_coalesce_lossless_on_fuzzed_workloads(self, seed):
        """The PR-1 oracle pins coalescing across fuzzed schedules."""
        workload = generate_workload(seed, max_vertices=48,
                                     max_batches=6)
        profile = workload.profile

        def build():
            return StreamingAnalyticsServer(
                profile.factory, workload.build_graph(),
                approx_iterations=3,
                exact_iterations=profile.num_iterations,
                until_convergence=profile.until_convergence,
            )

        sequential = build()
        resilient = ResilientAnalyticsServer(build(), queue_capacity=1,
                                             admission="coalesce")
        for batch in workload.schedule:
            sequential.ingest(batch)
            try:
                resilient.submit(batch, pump=False)
            except ValueError:
                # The batch deletes at a vertex that exists only once
                # earlier queued growth applies: apply the queue, then
                # resubmit against the grown snapshot.
                resilient.drain()
                resilient.submit(batch, pump=False)
        resilient.drain()
        verdict = compare_snapshots(resilient.approximate_values,
                                    sequential.approximate_values,
                                    tolerance=profile.tolerance)
        assert verdict is None, (workload.describe(), verdict)

    def test_enqueue_failpoint_fires(self, graph, rng):
        resilient = ResilientAnalyticsServer(plain_server(graph))
        batch = make_random_batch(graph, rng, 4, 4)
        with scoped_failpoints() as registry:
            registry.arm("admission.enqueue", kind="fault", hit=1)
            with pytest.raises(InjectedFault):
                resilient.submit(batch)


# ----------------------------------------------------------------------
# Deadline-budgeted queries
# ----------------------------------------------------------------------
class TestDeadlineQueries:
    def ingested(self, graph, rng, exact_iterations=10):
        server = plain_server(graph, exact_iterations=exact_iterations)
        batches = [make_random_batch(server.graph, rng, 8, 8)
                   for _ in range(3)]
        for batch in batches:
            server.ingest(batch)
        return server, batches

    def test_expired_deadline_degrades_instead_of_raising(self, graph,
                                                          rng):
        server, _ = self.ingested(graph, rng)
        result = server.query(deadline=StepDeadline(2))
        assert result.degraded
        assert result.iterations_completed == result.iterations == 5
        assert result.iterations_completed < server.exact_iterations
        assert np.isfinite(result.residual_l1)
        assert server.queries_degraded == 1

    def test_degraded_values_equal_truncated_window(self, graph, rng):
        """Bit-for-bit: the best-so-far state IS the shallower answer."""
        server, batches = self.ingested(graph, rng)
        result = server.query(deadline=StepDeadline(2))
        truncated = plain_server(
            graph, exact_iterations=result.iterations_completed
        )
        for batch in batches:
            truncated.ingest(batch)
        full_window = truncated.query()
        assert not full_window.degraded
        assert np.array_equal(result.values, full_window.values)

    def test_degraded_values_match_from_scratch_truncation(self, graph,
                                                           rng):
        from repro.ligra.engine import LigraEngine

        server, _ = self.ingested(graph, rng)
        result = server.query(deadline=StepDeadline(2))
        scratch = LigraEngine(PageRank()).run(
            server.graph, result.iterations_completed
        )
        verdict = compare_snapshots(result.values, scratch,
                                    tolerance=1e-9)
        assert verdict is None, verdict

    def test_generous_deadline_is_not_degraded(self, graph, rng):
        server, _ = self.ingested(graph, rng)
        result = server.query(deadline=StepDeadline(1000))
        assert not result.degraded
        assert result.iterations == server.exact_iterations
        assert server.queries_degraded == 0

    def test_zero_wall_clock_budget_still_answers(self, graph, rng):
        server, _ = self.ingested(graph, rng)
        result = server.query(deadline_s=0.0)
        assert result.degraded
        assert result.values.shape == (server.graph.num_vertices,)
        # The branch never ran past the copied main-loop state.
        assert result.iterations_completed >= server.approx_iterations

    def test_early_fixpoint_is_not_degraded(self, rng):
        # A graph whose PageRank stabilises quickly: the frontier
        # empties before the window does, and the remaining iterations
        # are identity -- that is completion, not degradation.
        graph = rmat(scale=5, edge_factor=2, seed=4, weighted=True)
        server = StreamingAnalyticsServer(
            lambda: PageRank(tolerance=1e-2), graph,
            approx_iterations=2, exact_iterations=200,
        )
        server.ingest(make_random_batch(server.graph, rng, 4, 4))
        result = server.query(deadline=StepDeadline(1000))
        assert result.iterations_completed < 200
        assert not result.degraded

    def test_deadline_failpoint_fires_only_with_a_budget(self, graph,
                                                         rng):
        server, _ = self.ingested(graph, rng)
        with scoped_failpoints() as registry:
            registry.arm("query.deadline", kind="fault", hit=1)
            server.query()  # no budget: the site is not on this path
            with pytest.raises(InjectedFault):
                server.query(deadline=StepDeadline(3))


# ----------------------------------------------------------------------
# Flapping poison: the breaker bounds restores
# ----------------------------------------------------------------------
class TestFlappingPoison:
    N = 12

    def flap(self, graph, state_dir, breaker_config):
        manager = RecoveryManager(str(state_dir), checkpoint_every=100,
                                  poison_check=growth_poison_check)
        resilient = ResilientAnalyticsServer(
            plain_server(graph, recovery=manager),
            queue_capacity=8, breaker=breaker_config,
        )
        for _ in range(self.N):
            resilient.submit(poison_batch())
            # Queries keep answering throughout the storm, serving the
            # last good state.
            result = resilient.query(deadline=StepDeadline(1))
            assert result.values.shape[0] == graph.num_vertices
        restores = resilient.server.restores
        manager.close()
        return resilient, restores

    def test_breaker_bounds_restores_under_flapping_poison(
            self, graph, tmp_path):
        config = BreakerConfig(quarantine_threshold=2,
                               cooldown_submits=2,
                               degraded_admission="coalesce")
        resilient, restores = self.flap(graph, tmp_path / "protected",
                                        config)
        budget = resilient.breaker.restore_budget(self.N)
        assert restores <= budget, (restores, budget)
        # The breaker actually engaged (this is not a vacuous bound).
        assert resilient.breaker.transitions
        assert resilient.deferred > 0

    def test_without_breaker_restores_are_unbounded(self, graph,
                                                    tmp_path):
        """Regression pin: the unprotected loop restores once per
        poison batch -- strictly above the protected budget."""
        _, restores = self.flap(graph, tmp_path / "unprotected",
                                BreakerConfig(enabled=False))
        assert restores == self.N
        protected_budget = CircuitBreaker(
            BreakerConfig(quarantine_threshold=2, cooldown_submits=2)
        ).restore_budget(self.N)
        assert restores > protected_budget

    def test_recovery_after_the_storm(self, graph, rng, tmp_path):
        """A probe that finds a healthy batch restores full service."""
        manager = RecoveryManager(str(tmp_path), checkpoint_every=100,
                                  poison_check=growth_poison_check)
        resilient = ResilientAnalyticsServer(
            plain_server(graph, recovery=manager),
            breaker=BreakerConfig(quarantine_threshold=2,
                                  cooldown_submits=2),
        )
        resilient.submit(poison_batch())
        resilient.submit(poison_batch())
        assert resilient.breaker.state == "open"
        good = [make_random_batch(graph, rng, 6, 6) for _ in range(3)]
        for batch in good:
            resilient.submit(batch)
        # Cooldown elapsed, the probe succeeded, the queue drained.
        assert resilient.breaker.state == "closed"
        assert resilient.queue_depth == 0
        shadow = plain_server(graph)
        for batch in good:
            shadow.ingest(batch)
        assert np.array_equal(resilient.approximate_values,
                              shadow.approximate_values)
        manager.close()


# ----------------------------------------------------------------------
# HALF_OPEN probe preservation under shed-oldest pressure
# ----------------------------------------------------------------------
class TestProbeShedPreservation:
    def test_shed_oldest_never_sheds_the_probe_head(self, graph, rng,
                                                    tmp_path):
        """Regression pin: during HALF_OPEN the queue head is the
        designated probe batch.  An overflow under shed-oldest must
        shed the oldest *non-probe* entry -- shedding the head would
        spend the cooldown the breaker just paid for on probing a
        fresher, unvetted batch (here: poison), consuming a restore
        and re-opening instead of closing for free."""
        manager = RecoveryManager(str(tmp_path), checkpoint_every=100,
                                  poison_check=growth_poison_check)
        resilient = ResilientAnalyticsServer(
            plain_server(graph, recovery=manager),
            queue_capacity=1, admission="shed-oldest",
            breaker=BreakerConfig(quarantine_threshold=2,
                                  cooldown_submits=2,
                                  degraded_admission="shed-oldest"),
        )
        resilient.submit(poison_batch())  # seq 0: quarantined
        resilient.submit(poison_batch())  # seq 1: quarantined, trips
        assert resilient.breaker.state == "open"
        restores_before = resilient.server.restores
        clean = make_random_batch(graph, rng, 6, 6)
        resilient.submit(clean)           # seq 2: deferred, queue head
        assert resilient.breaker.state == "open"
        # seq 3 overflows capacity 1 exactly as the cooldown elapses:
        # the breaker is HALF_OPEN and the head is the probe.
        resilient.submit(poison_batch())
        assert resilient.breaker.state == "closed"
        assert resilient.breaker.transitions[-1].to_state == "closed"
        # The clean head was probed (and applied); the fresher poison
        # batch was the one shed -- durably, as bookkeeping not poison.
        reasons = manager.quarantine_reasons()
        assert reasons[3].startswith("shed:")
        assert 2 not in manager.quarantined
        assert 3 not in manager.poison_quarantined()
        # No restore was spent probing poison.
        assert resilient.server.restores == restores_before
        assert resilient.queue_depth == 0
        shadow = plain_server(graph)
        shadow.ingest(clean)
        assert np.array_equal(resilient.approximate_values,
                              shadow.approximate_values)
        manager.close()


# ----------------------------------------------------------------------
# Health surface
# ----------------------------------------------------------------------
class TestHealth:
    def test_snapshot_tracks_queue_and_staleness(self, graph, rng):
        resilient = ResilientAnalyticsServer(plain_server(graph),
                                             queue_capacity=8)
        for _ in range(3):
            resilient.submit(make_random_batch(graph, rng, 4, 4),
                             pump=False)
        health = resilient.health()
        assert health.queue_depth == 3
        assert health.staleness_batches == 3
        assert health.applied == 0 and health.submitted == 3
        assert health.breaker_state == "closed"
        assert health.admission_policy == "block"
        resilient.drain()
        health = resilient.health()
        assert health.queue_depth == 0
        assert health.staleness_batches == 0
        assert health.applied == 3

    def test_staleness_counts_constituents_not_entries(self, graph,
                                                       rng):
        resilient = ResilientAnalyticsServer(
            plain_server(graph), queue_capacity=1, admission="coalesce",
        )
        for _ in range(4):
            resilient.submit(make_random_batch(graph, rng, 4, 4),
                             pump=False)
        health = resilient.health()
        assert health.queue_depth == 1  # folded into one entry
        assert health.staleness_batches == 4  # but four batches stale
        assert health.coalesced == 3

    def test_quarantine_count_reads_poison_only(self, graph, rng,
                                                tmp_path):
        manager = RecoveryManager(str(tmp_path), checkpoint_every=100,
                                  poison_check=growth_poison_check)
        resilient = ResilientAnalyticsServer(
            plain_server(graph, recovery=manager), queue_capacity=2,
            admission="shed-oldest",
        )
        resilient.submit(make_random_batch(graph, rng, 4, 4),
                         pump=False)
        resilient.submit(make_random_batch(graph, rng, 4, 4),
                         pump=False)
        resilient.submit(poison_batch())  # overflow sheds the oldest
        health = resilient.health()
        # Shed skip-marks are bookkeeping, not poison.
        assert health.quarantine_count == 1
        assert health.shed == 1
        assert health.restores == 1
        manager.close()

    def test_record_health_appends_jsonl(self, graph, rng, tmp_path):
        resilient = ResilientAnalyticsServer(plain_server(graph))
        path = str(tmp_path / "health.jsonl")
        with JsonlJournal.open(path) as journal:
            resilient.record_health(journal)
            resilient.submit(make_random_batch(graph, rng, 4, 4))
            resilient.record_health(journal)
        with open(path) as handle:
            records = [json.loads(line) for line in handle]
        assert len(records) == 2
        assert all(r["event"] == "health" for r in records)
        assert records[-1]["applied"] == 1
        assert records[-1]["breaker_state"] == "closed"

    def test_snapshot_serialises(self, graph):
        health = ResilientAnalyticsServer(plain_server(graph)).health()
        decoded = json.loads(health.to_json())
        assert decoded["queue_depth"] == 0
        assert decoded["admission_policy"] == "block"


# ----------------------------------------------------------------------
# Restarting the resilient server
# ----------------------------------------------------------------------
class TestRecoverClassmethod:
    def test_recover_resumes_the_admitted_stream(self, graph, rng,
                                                 tmp_path):
        manager = RecoveryManager(str(tmp_path), checkpoint_every=2)
        resilient = ResilientAnalyticsServer(
            plain_server(graph, recovery=manager), queue_capacity=8,
        )
        batches = [make_random_batch(graph, rng, 6, 6)
                   for _ in range(4)]
        for batch in batches[:3]:
            resilient.submit(batch)
        # The fourth is admitted (WAL-logged) but never applied -- the
        # "crash with a non-empty queue" shape.
        resilient.submit(batches[3], pump=False)
        assert resilient.queue_depth == 1
        manager.close()

        revived = ResilientAnalyticsServer.recover(
            RecoveryManager(str(tmp_path), checkpoint_every=2),
            lambda: PageRank(),
        )
        # Submit-time logging means the queued batch was replayed.
        shadow = plain_server(graph)
        for batch in batches:
            shadow.ingest(batch)
        assert np.array_equal(revived.approximate_values,
                              shadow.approximate_values)
        assert revived.queue_depth == 0
        revived.server.recovery.close()
