"""Tests for WAL-shipped read replicas with epoch fencing.

The property stack, bottom up:

- the wire format round-trips and both transports deliver in order
  with two-phase (peek/ack) consumption;
- a cluster of replicas replaying shipped segments + checkpoints
  converges **bit-for-bit** with the writer and with a serial
  uninterrupted reference;
- a killed replica restarts from its own checkpoint + mirror tail and
  catches up; the delivery-lag signal (:meth:`staleness`) is zero in
  steady state and grows only when a replica stops applying;
- promotion fences the deposed writer: its late shipments land on the
  survivors' durable fence ledgers, never in their state;
- the writer's durable skip-marks (shed/coalesce/poison) ship with
  every segment, so replica replay skips exactly what the writer
  skipped.
"""

import json
import os

import numpy as np
import pytest

from repro.algorithms import PageRank
from repro.graph.generators import rmat
from repro.recovery import RecoveryManager
from repro.serving import (
    DirectoryTransport,
    EpochAuthority,
    InProcessTransport,
    ReplicationCluster,
    ReplicationError,
    ResilientAnalyticsServer,
    Shipment,
    StreamingAnalyticsServer,
    replication_status,
)
from tests.conftest import make_random_batch


@pytest.fixture
def graph():
    return rmat(scale=6, edge_factor=5, seed=17, weighted=True)


def plain_server(graph, **kwargs):
    kwargs.setdefault("approx_iterations", 3)
    return StreamingAnalyticsServer(lambda: PageRank(), graph, **kwargs)


def build_cluster(graph, root, *, transport="inproc", replicas=2,
                  checkpoint_every=2, segment_records=2,
                  admission="block", queue_capacity=64):
    manager = RecoveryManager(str(root),
                              checkpoint_every=checkpoint_every,
                              retain=2, segment_records=segment_records)
    resilient = ResilientAnalyticsServer(
        plain_server(graph, recovery=manager),
        admission=admission, queue_capacity=queue_capacity,
    )
    return ReplicationCluster(resilient, lambda: PageRank(), str(root),
                              replicas=replicas, transport=transport)


def shadow_values(graph, batches):
    server = plain_server(graph)
    for batch in batches:
        server.ingest(batch)
    return server.approximate_values


# ----------------------------------------------------------------------
# Wire format + transports
# ----------------------------------------------------------------------
class TestShipmentWire:
    def test_json_roundtrip_is_lossless(self):
        shipment = Shipment(
            kind="segment", epoch=3, index=7, first_seq=4, end_seq=6,
            lines=("line-a", "line-b"), blob=b"\x00\x01\xff",
            skip={2: "shed: queue over capacity 1"},
        )
        assert Shipment.from_json(shipment.to_json()) == shipment


class TestTransports:
    def ship(self, index):
        return Shipment(kind="segment", epoch=1, index=index,
                        first_seq=index, end_seq=index + 1)

    def test_inproc_peek_then_ack(self):
        link = InProcessTransport()
        for index in range(3):
            link.send(self.ship(index))
        assert link.pending() == 3
        # peek does not consume: redelivery after a mid-apply death.
        assert link.peek().index == 0
        assert link.peek().index == 0
        link.ack()
        assert link.peek().index == 1
        assert link.pending() == 2

    def test_directory_spool_survives_reopen(self, tmp_path):
        spool = str(tmp_path / "inbox")
        link = DirectoryTransport(spool)
        for index in range(3):
            link.send(self.ship(index))
        assert link.peek().index == 0
        link.ack()
        # A fresh consumer (restarted replica process) resumes at the
        # persisted cursor with unacked shipments intact.
        reopened = DirectoryTransport(spool)
        assert reopened.pending() == 2
        assert reopened.peek().index == 1
        reopened.ack()
        reopened.ack()
        with pytest.raises(ReplicationError, match="no pending"):
            reopened.ack()


class TestEpochAuthority:
    def test_epoch_persists_across_reopen(self, tmp_path):
        path = str(tmp_path / "epoch.json")
        authority = EpochAuthority(path)
        assert authority.epoch == 1
        assert authority.advance() == 2
        assert EpochAuthority(path).epoch == 2


# ----------------------------------------------------------------------
# Convergence
# ----------------------------------------------------------------------
class TestClusterConvergence:
    @pytest.mark.parametrize("transport", ["inproc", "directory"])
    def test_replicas_converge_bit_for_bit(self, graph, rng, tmp_path,
                                           transport):
        cluster = build_cluster(graph, tmp_path, transport=transport)
        batches = [make_random_batch(graph, rng, 8, 8)
                   for _ in range(6)]
        for batch in batches:
            cluster.submit(batch)
            cluster.replicate()
        cluster.sync()
        expected = shadow_values(graph, batches)
        writer_values = cluster.writer.approximate_values
        assert np.array_equal(writer_values, expected)
        for name, replica in cluster.replicas.items():
            assert np.array_equal(replica.approximate_values,
                                  writer_values), name
        assert cluster.max_lag() == 0
        assert cluster.staleness() == 0
        cluster.close()

    def test_submit_returns_read_your_writes_token(self, graph, rng,
                                                   tmp_path):
        cluster = build_cluster(graph, tmp_path)
        token = cluster.submit(make_random_batch(graph, rng, 4, 4))
        assert token == 1  # one durable record logged
        assert cluster.submit(make_random_batch(graph, rng, 4, 4)) == 2
        cluster.close()

    def test_writer_must_be_durable(self, graph):
        with pytest.raises(ReplicationError, match="durable"):
            ReplicationCluster(
                ResilientAnalyticsServer(plain_server(graph)),
                lambda: PageRank(), "unused-root",
            )

    def test_unknown_transport_rejected(self, graph, tmp_path):
        with pytest.raises(ReplicationError, match="transport"):
            build_cluster(graph, tmp_path, transport="carrier-pigeon")


# ----------------------------------------------------------------------
# Kill / restart
# ----------------------------------------------------------------------
class TestKillRestart:
    def test_replica_restarts_from_checkpoint_and_tail(self, graph, rng,
                                                       tmp_path):
        cluster = build_cluster(graph, tmp_path)
        batches = [make_random_batch(graph, rng, 8, 8)
                   for _ in range(6)]
        for batch in batches[:3]:
            cluster.submit(batch)
            cluster.replicate()
        cluster.kill_replica("r0")
        for batch in batches[3:]:
            cluster.submit(batch)
            cluster.replicate()
        # The writer keeps shipping to the dead replica's inbox: the
        # shipped-but-unapplied backlog is exactly the staleness signal.
        assert cluster.staleness() > 0
        assert not cluster.replicas["r0"].alive
        cluster.restart_replica("r0")
        cluster.sync()
        assert cluster.staleness() == 0
        assert cluster.max_lag() == 0
        expected = shadow_values(graph, batches)
        for name, replica in cluster.replicas.items():
            assert np.array_equal(replica.approximate_values,
                                  expected), name
        cluster.close()


# ----------------------------------------------------------------------
# The two lag signals
# ----------------------------------------------------------------------
class TestStalenessSignal:
    def test_pipeline_lag_is_not_staleness(self, graph, rng, tmp_path):
        """max_lag sawtooths with the shipping cadence; staleness does
        not -- a healthy replica owes nothing it was never shipped."""
        cluster = build_cluster(graph, tmp_path, checkpoint_every=8,
                                segment_records=256)
        for _ in range(3):
            cluster.submit(make_random_batch(graph, rng, 4, 4))
            cluster.replicate()
        # Nothing sealed, no checkpoint crossed: replicas trail the
        # writer's position but have applied everything delivered.
        assert cluster.max_lag() == 3
        assert cluster.staleness() == 0
        cluster.sync()
        assert cluster.max_lag() == 0
        cluster.close()

    def test_shipped_through_tracks_links(self, graph, rng, tmp_path):
        cluster = build_cluster(graph, tmp_path)
        assert cluster.writer_node.shipped_through("r0") == 0
        assert cluster.writer_node.shipped_through("nope") == 0
        for _ in range(4):
            cluster.submit(make_random_batch(graph, rng, 4, 4))
            cluster.replicate()
        assert cluster.writer_node.shipped_through("r0") > 0
        cluster.close()


# ----------------------------------------------------------------------
# Fencing
# ----------------------------------------------------------------------
class TestFencing:
    def drive(self, graph, rng, tmp_path):
        cluster = build_cluster(graph, tmp_path)
        batches = [make_random_batch(graph, rng, 8, 8)
                   for _ in range(4)]
        for batch in batches[:2]:
            cluster.submit(batch)
            cluster.replicate()
        # The writer runs ahead un-replicated, then loses the crown.
        for batch in batches[2:]:
            cluster.submit(batch)
        return cluster, batches

    def test_promote_fences_the_deposed_writer(self, graph, rng,
                                               tmp_path):
        cluster, batches = self.drive(graph, rng, tmp_path)
        promoted = cluster.promote("r0")
        assert cluster.authority.epoch == 2
        assert "r0" not in cluster.replicas
        # The deposed writer's late tail arrives with a stale epoch:
        # rejected onto the survivor's durable ledger, never applied.
        deposed = cluster.deposed[-1]
        deposed.seal_tail()
        deposed.ship()
        cluster.deliver()
        survivor = cluster.replicas["r1"]
        ledger = survivor.fence_ledger()
        assert ledger
        assert all(entry["epoch"] < 2 for entry in ledger)
        assert survivor.fence_rejections == len(ledger)
        # The client re-drives the unacknowledged tail at the new
        # writer; the cluster then converges on the full stream.
        for batch in batches[promoted.server.batches_ingested:]:
            cluster.submit(batch)
            cluster.replicate()
        cluster.sync()
        expected = shadow_values(graph, batches)
        assert np.array_equal(cluster.writer.approximate_values,
                              expected)
        assert np.array_equal(survivor.approximate_values, expected)
        # The epoch survives on disk for the next incarnation.
        authority = EpochAuthority(str(tmp_path / "epoch.json"))
        assert authority.epoch == 2
        cluster.close()

    def test_redelivered_stale_shipment_dedups_on_the_ledger(
            self, graph, rng, tmp_path):
        cluster, _ = self.drive(graph, rng, tmp_path)
        cluster.promote("r0")
        survivor = cluster.replicas["r1"]
        stale = Shipment(kind="segment", epoch=1, index=999,
                         first_seq=50, end_seq=51)
        survivor.inbox.send(stale)
        cluster.deliver()
        once = survivor.fence_rejections
        assert once >= 1
        survivor.inbox.send(stale)  # at-least-once redelivery
        cluster.deliver()
        assert survivor.fence_rejections == once
        cluster.close()

    def test_cannot_promote_a_dead_replica(self, graph, rng, tmp_path):
        cluster, _ = self.drive(graph, rng, tmp_path)
        cluster.kill_replica("r0")
        with pytest.raises(ReplicationError, match="dead"):
            cluster.promote("r0")
        assert "r0" in cluster.replicas  # put back, not lost
        cluster.close()


# ----------------------------------------------------------------------
# Skip-mark propagation
# ----------------------------------------------------------------------
class TestSkipMarks:
    def test_shed_records_replicate_as_skips_not_batches(self, graph,
                                                         rng, tmp_path):
        cluster = build_cluster(graph, tmp_path,
                                admission="shed-oldest",
                                queue_capacity=2)
        batches = [make_random_batch(graph, rng, 8, 8)
                   for _ in range(5)]
        for batch in batches:
            cluster.writer.submit(batch, pump=False)
        cluster.writer.drain()
        cluster.sync()
        writer_marks = cluster.writer_node.manager.quarantine_reasons()
        shed = {seq for seq, reason in writer_marks.items()
                if reason.startswith("shed:")}
        assert shed == {0, 1, 2}
        expected = shadow_values(graph, batches[3:])
        for name, replica in cluster.replicas.items():
            assert np.array_equal(replica.approximate_values,
                                  expected), name
            # The writer's ledger was adopted, so a replica restart
            # replays the same survivor stream.
            assert shed <= set(replica.manager.quarantined), name
        cluster.close()


# ----------------------------------------------------------------------
# Status surfaces
# ----------------------------------------------------------------------
class TestStatus:
    def test_live_status_shape(self, graph, rng, tmp_path):
        cluster = build_cluster(graph, tmp_path)
        for _ in range(3):
            cluster.submit(make_random_batch(graph, rng, 4, 4))
            cluster.replicate()
        cluster.sync()
        summary = cluster.status()
        assert summary["epoch"] == 1
        assert summary["writer"]["next_seq"] == 3
        assert summary["writer"]["links"] == ["r0", "r1"]
        for name in ("r0", "r1"):
            info = summary["replicas"][name]
            assert info["alive"] is True
            assert info["next_seq"] == 3
            assert info["lag_batches"] == 0
            assert info["fence_rejections"] == 0
        cluster.close()

    def test_offline_status_reads_the_directory_tree(self, graph, rng,
                                                     tmp_path):
        cluster = build_cluster(graph, tmp_path)
        for _ in range(4):
            cluster.submit(make_random_batch(graph, rng, 4, 4))
            cluster.replicate()
        cluster.sync()
        cluster.close()
        report = replication_status(str(tmp_path))
        assert report["epoch"] == 1
        assert report["writer"]["next_seq"] == 4
        assert set(report["replicas"]) == {"r0", "r1"}
        for info in report["replicas"].values():
            assert info["next_seq"] == 4
        # The report is JSON-serialisable as-is (the CLI prints it).
        json.dumps(report)

    def test_offline_status_requires_a_directory(self, tmp_path):
        with pytest.raises(ReplicationError, match="not a directory"):
            replication_status(str(tmp_path / "absent"))


# ----------------------------------------------------------------------
# Snapshot-store segment shipping (mmap writer graphs)
# ----------------------------------------------------------------------
class TestStoreSegmentShipping:
    """When the writer's graph lives in an :class:`MmapStore`, its
    manifest-mode checkpoints reference store segment files; those
    files must ship through the transport ahead of the checkpoint, and
    a replica bootstrap must open them from its *own* store spool as
    memmaps -- a file copy, not a full-WAL replay."""

    def _mmap_cluster(self, tmp_path):
        from repro.graph.storage import MmapStore

        store = MmapStore(str(tmp_path / "writer-store"))
        graph = store.publish(
            rmat(scale=6, edge_factor=5, seed=17, weighted=True))
        cluster = build_cluster(graph, tmp_path / "cluster",
                                transport="directory")
        return graph, cluster

    def test_segments_ship_through_directory_transport(
            self, rng, tmp_path):
        from repro.obs.registry import scoped_registry

        with scoped_registry() as registry:
            graph, cluster = self._mmap_cluster(tmp_path)
            batches = [make_random_batch(graph, rng, 8, 8)
                       for _ in range(6)]
            for batch in batches:
                cluster.submit(batch)
                cluster.replicate()
            cluster.sync()
            shipped = registry.counter(
                "replication.store_segments_shipped").value
            assert shipped >= 6, (
                "manifest-mode checkpoints must ship their snapshot "
                "segment files (six arrays per snapshot)"
            )
            expected = shadow_values(graph, batches)
            for name, replica in cluster.replicas.items():
                assert np.array_equal(replica.approximate_values,
                                      expected), name
                spooled = [f for f in os.listdir(replica.store_root)
                           if f.endswith(".seg")]
                assert spooled, (
                    f"replica {name} has no shipped store segments"
                )
            cluster.close()

    def test_replica_restart_bootstraps_from_local_spool(
            self, rng, tmp_path):
        """A restarted replica restores the checkpointed graph from
        segment files in its own spool -- memmap views under the
        replica's store root, and strictly fewer WAL records replayed
        than the writer ingested."""
        graph, cluster = self._mmap_cluster(tmp_path)
        batches = [make_random_batch(graph, rng, 8, 8)
                   for _ in range(6)]
        for batch in batches:
            cluster.submit(batch)
            cluster.replicate()
        cluster.sync()
        cluster.kill_replica("r0")
        replica = cluster.restart_replica("r0")
        cluster.sync()
        assert np.array_equal(replica.approximate_values,
                              shadow_values(graph, batches))
        # The restored snapshot must be served from the replica's own
        # spool, not the writer's store directory.
        restored = replica.server.engine.graph
        targets = restored.out_targets
        assert isinstance(targets, np.memmap)
        assert os.path.abspath(targets.filename).startswith(
            os.path.abspath(replica.store_root))
        # Bootstrap position: the replica resumed from a checkpoint,
        # not from seq 0 (full-WAL replay).
        generations = replica.manager.checkpoints()
        assert generations and generations[-1][0] > 0
        cluster.close()
