"""Tests for the shared-structure analytics suite."""

import numpy as np
import pytest

from repro.algorithms import CoEM, LabelPropagation, PageRank
from repro.algorithms.triangle_counting import triangle_counts
from repro.graph.generators import rmat
from repro.ligra.engine import LigraEngine
from repro.serving import AnalyticsSuite
from tests.conftest import make_random_batch


@pytest.fixture
def graph():
    return rmat(scale=7, edge_factor=6, seed=92, weighted=True)


ANALYSES = {
    "rank": lambda: PageRank(),
    "labels": lambda: LabelPropagation(num_labels=3),
    "entities": lambda: CoEM(),
}


class TestSuite:
    def test_requires_an_analysis(self, graph):
        with pytest.raises(ValueError):
            AnalyticsSuite(graph, {})

    def test_every_analysis_stays_exact(self, graph, rng):
        suite = AnalyticsSuite(graph, ANALYSES, num_iterations=8)
        for _ in range(3):
            batch = make_random_batch(suite.graph, rng, 15, 15)
            results = suite.apply(batch)
            assert set(results) == set(ANALYSES)
        for name, factory in ANALYSES.items():
            truth = LigraEngine(factory()).run(suite.graph, 8)
            assert np.allclose(suite.values(name), truth, atol=1e-7), name

    def test_structure_adjusted_once_per_batch(self, graph, rng):
        suite = AnalyticsSuite(graph, ANALYSES, num_iterations=5)
        before = suite._streaming.batches_applied
        suite.apply(make_random_batch(suite.graph, rng, 10, 10))
        assert suite._streaming.batches_applied == before + 1
        # Every engine sees the same snapshot object.
        snapshots = {id(engine.graph) for engine in suite.engines.values()}
        assert len(snapshots) == 1

    def test_triangle_counts_maintained(self, graph, rng):
        suite = AnalyticsSuite(graph, {"rank": lambda: PageRank()},
                               num_iterations=5, include_triangles=True)
        for _ in range(4):
            suite.apply(make_random_batch(suite.graph, rng, 20, 20,
                                          weighted=False))
        expected = triangle_counts(suite.graph)
        assert suite.triangle_counts.total == expected.total
        assert np.array_equal(suite.triangle_counts.per_vertex,
                              expected.per_vertex)

    def test_triangles_only_suite(self, graph, rng):
        suite = AnalyticsSuite(graph, {}, include_triangles=True)
        suite.apply(make_random_batch(suite.graph, rng, 10, 10,
                                      weighted=False))
        assert suite.triangle_counts.total == (
            triangle_counts(suite.graph).total
        )

    def test_batch_counter(self, graph, rng):
        suite = AnalyticsSuite(graph, {"rank": lambda: PageRank()},
                               num_iterations=4)
        suite.apply(make_random_batch(suite.graph, rng, 5, 5))
        suite.apply(make_random_batch(suite.graph, rng, 5, 5))
        assert suite.batches_applied == 2
        assert "rank" in repr(suite)


class TestBackends:
    def test_backend_threads_through_every_engine(self, graph, rng):
        from repro.runtime.exec import ShardedBackend

        backend = ShardedBackend(4)
        sharded = AnalyticsSuite(graph, ANALYSES, num_iterations=5,
                                 backend=backend)
        serial = AnalyticsSuite(graph, ANALYSES, num_iterations=5)
        assert all(engine.backend is backend
                   for engine in sharded.engines.values())
        for _ in range(3):
            batch = make_random_batch(serial.graph, rng, 10, 10)
            serial.apply(batch)
            sharded.apply(batch)
        for name in ANALYSES:
            assert np.array_equal(sharded.values(name),
                                  serial.values(name)), name


def growth_poison_check(values):
    """Suite poison rule: these workloads never grow the graph."""
    if values.shape[0] > 128:
        return f"unexpected growth to {values.shape[0]} vertices"
    return None


class TestSuiteRecovery:
    def test_durable_suite_rejects_triangles(self, graph, tmp_path):
        from repro.serving import SuiteRecovery

        with pytest.raises(ValueError):
            AnalyticsSuite(graph, {"rank": lambda: PageRank()},
                           include_triangles=True,
                           recovery=SuiteRecovery(str(tmp_path)))

    def test_poison_quarantines_the_whole_suite(self, graph, rng,
                                                tmp_path):
        from repro.graph.mutation import MutationBatch
        from repro.serving import SuiteRecovery

        recovery = SuiteRecovery(str(tmp_path), checkpoint_every=100,
                                 poison_check=growth_poison_check)
        suite = AnalyticsSuite(graph, ANALYSES, num_iterations=5,
                               recovery=recovery)
        shadow = AnalyticsSuite(graph, ANALYSES, num_iterations=5)
        good = make_random_batch(graph, rng, 10, 10)
        suite.apply(good)
        shadow.apply(good)

        poison = MutationBatch.from_edges(additions=[(0, 1)],
                                          grow_to=200)
        values = suite.apply(poison)  # must NOT raise
        assert suite.batches_quarantined == 1
        # Every analysis rolled back -- none kept the poison's effects.
        for name in ANALYSES:
            assert np.array_equal(values[name], shadow.values(name)), name
            assert recovery.manager(name).quarantined == frozenset({1})
        # The restored engines share ONE structure again.
        snapshots = {id(engine.graph)
                     for engine in suite.engines.values()}
        assert len(snapshots) == 1
        assert suite.graph.num_vertices == shadow.graph.num_vertices

        # ... and the stream keeps flowing in lockstep.
        after = make_random_batch(shadow.graph, rng, 10, 10)
        suite.apply(after)
        shadow.apply(after)
        for name in ANALYSES:
            assert np.array_equal(suite.values(name),
                                  shadow.values(name)), name
        recovery.close()
