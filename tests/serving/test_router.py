"""Tests for lag-aware query routing with deadline-preserving failover.

The satellite acceptance property lives here: a replica that dies
mid-query is retried on a healthy replica **within the original
deadline budget** -- the router materializes ONE deadline object and
every failover attempt shares it, so the answer is bit-for-bit what the
healthy replica serves under that same budget, never a fresh one.
"""

import numpy as np
import pytest

from repro.algorithms import PageRank
from repro.graph.generators import rmat
from repro.recovery import RecoveryManager
from repro.runtime.deadline import StepDeadline
from repro.serving import (
    NoReplicaAvailableError,
    QueryRouter,
    ReplicationCluster,
    ResilientAnalyticsServer,
    StalenessError,
    StreamingAnalyticsServer,
)
from repro.testing.faults import scoped_failpoints
from tests.conftest import make_random_batch


@pytest.fixture
def graph():
    return rmat(scale=6, edge_factor=5, seed=23, weighted=True)


def build_cluster(graph, root, **server_kwargs):
    manager = RecoveryManager(str(root), checkpoint_every=2, retain=2,
                              segment_records=2)
    server = StreamingAnalyticsServer(
        lambda: PageRank(), graph, approx_iterations=3,
        exact_iterations=10, recovery=manager, **server_kwargs,
    )
    resilient = ResilientAnalyticsServer(server, queue_capacity=64)
    return ReplicationCluster(
        resilient, lambda: PageRank(), str(root), replicas=2,
        exact_iterations=10,
    )


@pytest.fixture
def cluster(graph, rng, tmp_path):
    cluster = build_cluster(graph, tmp_path)
    for _ in range(3):
        cluster.submit(make_random_batch(graph, rng, 8, 8))
        cluster.replicate()
    cluster.sync()
    yield cluster
    cluster.close()


class TestRouting:
    def test_routes_to_the_freshest_replica_name_tiebreak(self, cluster):
        router = QueryRouter(cluster)
        assert router.candidates() == ["r0", "r1"]
        routed = router.query(deadline=StepDeadline(1000))
        assert routed.served_by == "r0"
        assert routed.attempts == 1 and routed.failovers == 0
        assert routed.staleness_batches == 0
        assert not routed.degraded
        assert router.queries_routed == 1

    def test_failover_stays_within_the_original_deadline(self, cluster):
        """Satellite pin: replica dies mid-query -> the retry on the
        healthy replica answers under the SAME budget object."""
        budget = 4
        deadline = StepDeadline(budget)
        router = QueryRouter(cluster)
        with scoped_failpoints() as registry:
            registry.arm("replica.query", kind="fault", hit=1)
            routed = router.query(deadline=deadline)
        assert routed.served_by == "r1"
        assert routed.attempts == 2
        assert routed.failovers == 1
        assert router.failovers == 1
        assert "r0" in router.unhealthy()
        # The original deadline object was consumed by the surviving
        # attempt -- no retry restarted the clock...
        assert deadline.checks > 0
        # ...so the failover answer is bit-for-bit the healthy
        # replica's answer under a fresh deadline of the SAME budget.
        direct = cluster.replicas["r1"].query(
            deadline=StepDeadline(budget))
        assert routed.degraded == direct.degraded
        assert np.array_equal(routed.values, direct.values)

    def test_probe_restores_a_transient_failure(self, cluster):
        router = QueryRouter(cluster)
        with scoped_failpoints() as registry:
            registry.arm("replica.query", kind="fault", hit=1)
            router.query(deadline=StepDeadline(1000))
        assert router.candidates() == ["r1"]
        # The replica is alive and bootstrapped: the health probe
        # re-admits it, and it is the freshest candidate again.
        assert router.probe() == ["r0"]
        assert router.unhealthy() == {}
        assert router.query(deadline=StepDeadline(1000)).served_by == "r0"

    def test_probe_keeps_a_dead_replica_quarantined(self, cluster):
        router = QueryRouter(cluster)
        cluster.kill_replica("r0")
        routed = router.query(deadline=StepDeadline(1000))
        # A dead replica is excluded up front, not discovered the hard
        # way: the query never counts it as an attempt.
        assert routed.served_by == "r1" and routed.attempts == 1
        router.mark_unhealthy("r0", "probe found it dead")
        assert router.probe() == []
        assert "r0" in router.unhealthy()
        cluster.restart_replica("r0")
        cluster.sync()
        assert router.probe() == ["r0"]

    def test_writer_fallback_when_every_replica_is_down(self, cluster):
        router = QueryRouter(cluster)
        cluster.kill_replica("r0")
        cluster.kill_replica("r1")
        routed = router.query(deadline=StepDeadline(1000))
        assert routed.served_by == "writer"
        assert routed.staleness_batches == 0
        assert router.writer_fallbacks == 1
        direct = cluster.writer.query(deadline=StepDeadline(1000))
        assert np.array_equal(routed.values, direct.values)

    def test_no_replica_available_without_fallback(self, cluster):
        router = QueryRouter(cluster, writer_fallback=False)
        cluster.kill_replica("r0")
        cluster.kill_replica("r1")
        with pytest.raises(NoReplicaAvailableError):
            router.query(deadline=StepDeadline(1000))


class TestConsistencyKnobs:
    def test_bounded_staleness_excludes_laggards(self, graph, rng,
                                                 tmp_path):
        cluster = build_cluster(graph, tmp_path)
        for _ in range(2):
            cluster.submit(make_random_batch(graph, rng, 4, 4))
        # Nothing replicated yet: both replicas trail by 2 records.
        bounded = QueryRouter(cluster, max_staleness_batches=0)
        assert bounded.candidates() == []
        routed = bounded.query(deadline=StepDeadline(1000))
        assert routed.served_by == "writer"
        cluster.sync()
        assert bounded.candidates() == ["r0", "r1"]
        cluster.close()

    def test_read_your_writes_token_nudges_replication(self, graph, rng,
                                                       tmp_path):
        cluster = build_cluster(graph, tmp_path)
        router = QueryRouter(cluster)
        token = 0
        for _ in range(4):
            token = cluster.submit(make_random_batch(graph, rng, 4, 4))
        # No replica has applied the token yet; the router replicates
        # once on its own and then serves from a caught-up replica.
        assert router.candidates(min_applied_batch=token) == []
        routed = router.query(deadline=StepDeadline(1000),
                              min_applied_batch=token)
        assert routed.served_by in ("r0", "r1")
        served = cluster.replicas[routed.served_by]
        assert served.next_seq >= token
        cluster.close()

    def test_staleness_error_when_the_token_is_unreachable(self, graph,
                                                           rng,
                                                           tmp_path):
        cluster = build_cluster(graph, tmp_path)
        router = QueryRouter(cluster, writer_fallback=False)
        cluster.kill_replica("r0")
        cluster.kill_replica("r1")
        token = cluster.submit(make_random_batch(graph, rng, 4, 4))
        with pytest.raises(StalenessError, match="no replica"):
            router.query(deadline=StepDeadline(1000),
                         min_applied_batch=token)
        cluster.close()
