"""Tests for chaos-hardened replication: the seeded lossy transport,
the bounded retry/dead-letter shipping path, and the seq-consistency
pins that make at-least-once delivery exactly-once in effect.

The acceptance property stack:

- :class:`ChaosTransport` is deterministic -- same seed, same link
  name, same send sequence => bit-identical fault schedule;
- each fault kind does what it says on the wire (drop swallows,
  duplicate double-enqueues, corrupt flips a byte the CRC catches,
  reorder swaps adjacent shipments, delay hides a shipment for N
  polls);
- a cluster under **all five faults at >= 10%** still converges
  bit-for-bit with the uninterrupted oracle across >= 5 seeds, with
  every fault kind actually fired at least once;
- a black-hole link exhausts its retry budget into the durable
  dead-letter ledger and ``sync()`` returns ``False`` instead of
  hanging the writer, while healthy replicas still converge;
- duplicated and reordered shipments are never double-applied (the
  exactly-once pin);
- a torn spool file is skipped, retried, and finally sidelined as
  ``*.torn`` so later shipments can flow.
"""

import json
import os

import numpy as np
import pytest

from repro.algorithms import PageRank
from repro.graph.generators import rmat
from repro.obs.registry import scoped_registry
from repro.serving import (
    ChaosConfig,
    ChaosTransport,
    DirectoryTransport,
    InProcessTransport,
    QueryRouter,
    RetryPolicy,
    Shipment,
    replication_status,
    wrap_cluster,
)
from repro.testing.crash import (
    chaos_convergence_sweep,
    chaos_dead_letter_round,
    chaos_fault_coverage,
)
from tests.conftest import make_random_batch
from tests.serving.test_replication import build_cluster, shadow_values


@pytest.fixture
def graph():
    return rmat(scale=6, edge_factor=5, seed=29, weighted=True)


def ship(index, lines=("payload",)):
    return Shipment(kind="segment", epoch=1, index=index,
                    first_seq=index, end_seq=index + 1, lines=lines)


# ----------------------------------------------------------------------
# ChaosTransport unit behavior
# ----------------------------------------------------------------------
class TestChaosConfig:
    def test_all_faults_enables_every_kind(self):
        config = ChaosConfig.all_faults(seed=7, rate=0.25)
        assert config.any_enabled()
        assert (config.drop, config.duplicate, config.corrupt,
                config.reorder, config.delay) == (0.25,) * 5

    def test_defaults_are_quiet(self):
        assert not ChaosConfig(seed=7).any_enabled()


class TestChaosTransport:
    def run_plan(self, config, count=20):
        link = ChaosTransport(InProcessTransport(), config, name="r0")
        for index in range(count):
            link.send(ship(index))
        link.flush()
        return link

    def test_same_seed_same_schedule(self):
        config = ChaosConfig.all_faults(seed=3, rate=0.3)
        first = self.run_plan(config)
        second = self.run_plan(config)
        assert first.schedule == second.schedule
        assert first.counts == second.counts
        assert any(first.counts[kind] for kind in
                   ("drop", "duplicate", "corrupt", "reorder", "delay"))

    def test_different_link_names_draw_independently(self):
        config = ChaosConfig.all_faults(seed=3, rate=0.3)
        mine = self.run_plan(config)
        link = ChaosTransport(InProcessTransport(), config, name="r1")
        for index in range(20):
            link.send(ship(index))
        link.flush()
        assert [entry["fault"] for entry in mine.schedule] != \
            [entry["fault"] for entry in link.schedule]

    def test_drop_swallows_the_shipment(self):
        link = ChaosTransport(InProcessTransport(),
                              ChaosConfig(seed=0, drop=1.0))
        link.send(ship(0))
        assert link.pending() == 0
        assert link.counts["drop"] == 1

    def test_duplicate_enqueues_twice(self):
        link = ChaosTransport(InProcessTransport(),
                              ChaosConfig(seed=0, duplicate=1.0))
        link.send(ship(0))
        assert link.pending() == 2
        assert link.peek() == ship(0)
        link.ack()
        assert link.peek() == ship(0)

    def test_corrupt_mutates_the_payload(self):
        link = ChaosTransport(InProcessTransport(),
                              ChaosConfig(seed=0, corrupt=1.0))
        original = ship(0, lines=("abcdefgh",))
        link.send(original)
        delivered = link.peek()
        assert delivered is not None
        assert delivered != original
        assert link.counts["corrupt"] == 1

    def test_reorder_swaps_adjacent_shipments(self):
        link = ChaosTransport(InProcessTransport(),
                              ChaosConfig(seed=0, reorder=1.0))
        link.send(ship(0))
        # Held back: not visible downstream, but still "pending" from
        # the writer's accounting (it was sent, not dropped).
        assert link.inner.pending() == 0
        assert link.pending() == 1
        link.send(ship(1))
        assert link.peek() == ship(1)
        link.ack()
        assert link.peek() == ship(0)

    def test_flush_delivers_a_held_reorder(self):
        link = ChaosTransport(InProcessTransport(),
                              ChaosConfig(seed=0, reorder=1.0))
        link.send(ship(0))
        assert link.inner.pending() == 0
        link.flush()
        assert link.peek() == ship(0)

    def test_delay_hides_for_exactly_delay_polls(self):
        link = ChaosTransport(
            InProcessTransport(),
            ChaosConfig(seed=0, delay=1.0, delay_polls=2),
        )
        link.send(ship(0))
        assert link.peek() is None
        assert link.peek() is None
        assert link.peek() == ship(0)
        # Once surfaced it stays surfaced (the plan entry is spent).
        assert link.peek() == ship(0)


class TestRetryPolicy:
    def test_first_attempt_has_no_backoff(self):
        assert RetryPolicy().backoff(1) == 0.0

    def test_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(max_attempts=8, backoff_base=0.001,
                             backoff_factor=2.0, backoff_cap=0.05,
                             jitter_seed=42)
        twin = RetryPolicy(max_attempts=8, backoff_base=0.001,
                           backoff_factor=2.0, backoff_cap=0.05,
                           jitter_seed=42)
        for attempt in range(1, 16):
            delay = policy.backoff(attempt)
            assert delay == twin.backoff(attempt)
            assert 0.0 <= delay <= 0.05

    def test_jitter_seed_changes_the_schedule(self):
        a = RetryPolicy(jitter_seed=1)
        b = RetryPolicy(jitter_seed=2)
        assert any(a.backoff(n) != b.backoff(n) for n in range(2, 8))


# ----------------------------------------------------------------------
# Torn spool files (DirectoryTransport regression)
# ----------------------------------------------------------------------
class TestTornSpool:
    def test_torn_file_is_skipped_then_sidelined(self, tmp_path):
        spool = str(tmp_path / "inbox")
        os.makedirs(spool)
        # A producer without our atomic write discipline tore this
        # write mid-flight; it sorts before the healthy shipment.
        torn = os.path.join(spool, "ship-000000000000.json")
        with open(torn, "w", encoding="utf-8") as stream:
            stream.write('{"kind": "segme')
        link = DirectoryTransport(spool)
        link.send(ship(7))
        with scoped_registry() as registry:
            # Skip-and-retry: the first TORN_RETRIES - 1 polls report
            # an empty inbox rather than crashing the poll loop.
            assert link.peek() is None
            assert link.peek() is None
            # Third strike: sidelined as *.torn, later traffic flows.
            assert link.peek() == ship(7)
            assert registry.counter(
                "replication.torn_spool_skips").value == 3
            assert registry.counter(
                "replication.torn_spool_dropped").value == 1
        assert not os.path.exists(torn)
        assert os.path.exists(torn + ".torn")
        link.ack()
        assert link.pending() == 0

    def test_intact_spool_resets_the_streak(self, tmp_path):
        spool = str(tmp_path / "inbox")
        link = DirectoryTransport(spool)
        link.send(ship(0))
        # One transient bad read must not accumulate toward sidelining
        # across unrelated files.
        assert link.peek() == ship(0)
        assert link._torn_streak == 0


# ----------------------------------------------------------------------
# Exactly-once pins: duplicates and reorders never double-apply
# ----------------------------------------------------------------------
class TestExactlyOnce:
    @pytest.mark.parametrize("config_kwargs", [
        {"duplicate": 1.0},
        {"reorder": 1.0},
        {"duplicate": 1.0, "reorder": 0.5},
    ])
    def test_no_double_apply(self, graph, rng, tmp_path, config_kwargs):
        cluster = build_cluster(graph, tmp_path, replicas=2)
        wrappers = wrap_cluster(
            cluster, ChaosConfig(seed=5, **config_kwargs)
        )
        batches = [make_random_batch(graph, rng, 8, 8)
                   for _ in range(6)]
        for batch in batches:
            cluster.submit(batch)
            cluster.replicate()
        for wrapper in wrappers:
            wrapper.flush()
        assert cluster.sync()
        if "duplicate" in config_kwargs:
            assert sum(w.counts["duplicate"] for w in wrappers) > 0
        if config_kwargs.get("reorder") == 1.0:
            assert sum(w.counts["reorder"] for w in wrappers) > 0
        expected = shadow_values(graph, batches)
        assert np.array_equal(cluster.writer.approximate_values,
                              expected)
        for name, replica in cluster.replicas.items():
            assert np.array_equal(replica.approximate_values,
                                  expected), name
        assert cluster.max_lag() == 0
        cluster.close()


# ----------------------------------------------------------------------
# The acceptance gates: chaos sweep + dead-letter non-hang
# ----------------------------------------------------------------------
class TestChaosConvergence:
    def test_sweep_converges_across_five_seeds(self, tmp_path):
        rounds = chaos_convergence_sweep(
            seeds=range(5), rate=0.1, replicas=3,
            state_root=str(tmp_path),
        )
        assert len(rounds) == 5
        for round_ in rounds:
            assert round_.ok, round_.summary()
            assert round_.dead_letters == 0
        coverage = chaos_fault_coverage(rounds)
        assert all(count > 0 for count in coverage.values()), coverage
        # The applied schedule is recorded for CI artifact upload.
        assert any(round_.schedule for round_ in rounds)

    def test_black_hole_dead_letters_instead_of_hanging(self, tmp_path):
        round_ = chaos_dead_letter_round(state_root=str(tmp_path))
        assert round_.ok, round_.summary()
        assert not round_.converged
        assert round_.dead_letters >= 1
        # The ledger is durable JSONL, one entry per abandoned range,
        # and the observation surface exposes its size.
        ledger = tmp_path / "dead_letter.jsonl"
        assert ledger.exists()
        entries = [json.loads(line) for line in
                   ledger.read_text().splitlines() if line]
        assert len(entries) == round_.dead_letters
        assert all(entry["link"] == "r1" for entry in entries)
        assert all(entry["attempts"] >= 1 for entry in entries)
        status = replication_status(str(tmp_path))
        assert status["dead_letters"] == round_.dead_letters


# ----------------------------------------------------------------------
# Routing composes with integrity quarantine
# ----------------------------------------------------------------------
class TestRouterQuarantine:
    def test_quarantined_replica_serves_no_reads(self, graph, rng,
                                                 tmp_path):
        cluster = build_cluster(graph, tmp_path, replicas=2)
        for _ in range(3):
            cluster.submit(make_random_batch(graph, rng, 6, 6))
            cluster.replicate()
        cluster.sync()
        router = QueryRouter(cluster)
        assert set(router.candidates()) == {"r0", "r1"}
        with scoped_registry() as registry:
            cluster.integrity_quarantine["r0"] = "scrub found damage"
            assert router.candidates() == ["r1"]
            assert registry.counter(
                "router.quarantine_skips").value == 1
        cluster.integrity_quarantine.clear()
        assert set(router.candidates()) == {"r0", "r1"}
        cluster.close()
