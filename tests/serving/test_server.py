"""Tests for the Tornado-style analytics server."""

import numpy as np
import pytest

from repro.algorithms import LabelPropagation, PageRank, SSSP
from repro.graph.generators import rmat
from repro.ligra.engine import LigraEngine
from repro.serving import StreamingAnalyticsServer
from tests.conftest import make_random_batch


@pytest.fixture
def graph():
    return rmat(scale=7, edge_factor=5, seed=91, weighted=True)


class TestConstruction:
    def test_invalid_windows(self, graph):
        with pytest.raises(ValueError):
            StreamingAnalyticsServer(lambda: PageRank(), graph,
                                     approx_iterations=0)
        with pytest.raises(ValueError):
            StreamingAnalyticsServer(lambda: PageRank(), graph,
                                     approx_iterations=5,
                                     exact_iterations=3)

    def test_default_exact_window(self, graph):
        server = StreamingAnalyticsServer(lambda: PageRank(), graph,
                                          approx_iterations=2)
        assert server.exact_iterations == PageRank().default_iterations


class TestMainLoop:
    def test_approximate_values_are_short_window_exact(self, graph, rng):
        server = StreamingAnalyticsServer(lambda: PageRank(), graph,
                                          approx_iterations=3)
        for _ in range(3):
            server.ingest(make_random_batch(server.graph, rng, 10, 10))
        truth = LigraEngine(PageRank()).run(server.graph, 3)
        assert np.allclose(server.approximate_values, truth, atol=1e-8)

    def test_ingest_counts(self, graph, rng):
        server = StreamingAnalyticsServer(lambda: PageRank(), graph)
        server.ingest(make_random_batch(server.graph, rng, 5, 5))
        assert server.batches_ingested == 1


class TestBranchLoop:
    def test_query_is_exact_full_window(self, graph, rng):
        server = StreamingAnalyticsServer(
            lambda: LabelPropagation(num_labels=3), graph,
            approx_iterations=3, exact_iterations=10,
        )
        for _ in range(4):
            server.ingest(make_random_batch(server.graph, rng, 10, 10))
        result = server.query()
        truth = LigraEngine(LabelPropagation(num_labels=3)).run(
            server.graph, 10
        )
        assert np.allclose(result.values, truth, atol=1e-7)
        assert result.iterations == 10
        assert result.batches_ingested == 4

    def test_query_does_not_perturb_main_loop(self, graph, rng):
        server = StreamingAnalyticsServer(lambda: PageRank(), graph,
                                          approx_iterations=2,
                                          exact_iterations=8)
        server.ingest(make_random_batch(server.graph, rng, 5, 5))
        before = server.approximate_values.copy()
        server.query()
        assert np.array_equal(server.approximate_values, before)
        # And the main loop keeps refining correctly after a query.
        server.ingest(make_random_batch(server.graph, rng, 5, 5))
        truth = LigraEngine(PageRank()).run(server.graph, 2)
        assert np.allclose(server.approximate_values, truth, atol=1e-8)

    def test_query_until_convergence(self, graph, rng):
        server = StreamingAnalyticsServer(
            lambda: SSSP(source=0), graph,
            approx_iterations=2, until_convergence=True,
        )
        server.ingest(make_random_batch(server.graph, rng, 10, 10))
        result = server.query()
        truth = LigraEngine(SSSP(source=0)).run(server.graph,
                                                until_convergence=True)
        both_inf = np.isinf(result.values) & np.isinf(truth)
        assert np.allclose(result.values[~both_inf], truth[~both_inf])

    def test_query_cheaper_than_scratch(self, graph, rng):
        server = StreamingAnalyticsServer(
            lambda: LabelPropagation(num_labels=3, tolerance=1e-3,
                                     seed_every=3),
            graph, approx_iterations=5, exact_iterations=10,
        )
        server.ingest(make_random_batch(server.graph, rng, 5, 5))
        result = server.query()
        # The branch only runs the tail of the window (and selective
        # scheduling skips stabilised vertices), so it must do less edge
        # work than a 10-iteration from-scratch run.
        scratch = LigraEngine(LabelPropagation(num_labels=3))
        scratch.run(server.graph, 10)
        assert result.edge_computations < (
            scratch.metrics.edge_computations
        )
        assert server.queries_served == 1
