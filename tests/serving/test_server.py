"""Tests for the Tornado-style analytics server."""

import numpy as np
import pytest

from repro.algorithms import LabelPropagation, PageRank, SSSP
from repro.graph.generators import rmat
from repro.graph.mutation import MutationBatch
from repro.ligra.engine import LigraEngine
from repro.obs.registry import scoped_registry
from repro.recovery import RecoveryManager
from repro.serving import StreamingAnalyticsServer
from repro.testing.faults import InjectedFault, scoped_failpoints
from tests.conftest import make_random_batch


@pytest.fixture
def graph():
    return rmat(scale=7, edge_factor=5, seed=91, weighted=True)


class TestConstruction:
    def test_invalid_windows(self, graph):
        with pytest.raises(ValueError):
            StreamingAnalyticsServer(lambda: PageRank(), graph,
                                     approx_iterations=0)
        with pytest.raises(ValueError):
            StreamingAnalyticsServer(lambda: PageRank(), graph,
                                     approx_iterations=5,
                                     exact_iterations=3)

    def test_default_exact_window(self, graph):
        server = StreamingAnalyticsServer(lambda: PageRank(), graph,
                                          approx_iterations=2)
        assert server.exact_iterations == PageRank().default_iterations


class TestMainLoop:
    def test_approximate_values_are_short_window_exact(self, graph, rng):
        server = StreamingAnalyticsServer(lambda: PageRank(), graph,
                                          approx_iterations=3)
        for _ in range(3):
            server.ingest(make_random_batch(server.graph, rng, 10, 10))
        truth = LigraEngine(PageRank()).run(server.graph, 3)
        assert np.allclose(server.approximate_values, truth, atol=1e-8)

    def test_ingest_counts(self, graph, rng):
        server = StreamingAnalyticsServer(lambda: PageRank(), graph)
        server.ingest(make_random_batch(server.graph, rng, 5, 5))
        assert server.batches_ingested == 1


class TestBranchLoop:
    def test_query_is_exact_full_window(self, graph, rng):
        server = StreamingAnalyticsServer(
            lambda: LabelPropagation(num_labels=3), graph,
            approx_iterations=3, exact_iterations=10,
        )
        for _ in range(4):
            server.ingest(make_random_batch(server.graph, rng, 10, 10))
        result = server.query()
        truth = LigraEngine(LabelPropagation(num_labels=3)).run(
            server.graph, 10
        )
        assert np.allclose(result.values, truth, atol=1e-7)
        assert result.iterations == 10
        assert result.batches_ingested == 4

    def test_query_does_not_perturb_main_loop(self, graph, rng):
        server = StreamingAnalyticsServer(lambda: PageRank(), graph,
                                          approx_iterations=2,
                                          exact_iterations=8)
        server.ingest(make_random_batch(server.graph, rng, 5, 5))
        before = server.approximate_values.copy()
        server.query()
        assert np.array_equal(server.approximate_values, before)
        # And the main loop keeps refining correctly after a query.
        server.ingest(make_random_batch(server.graph, rng, 5, 5))
        truth = LigraEngine(PageRank()).run(server.graph, 2)
        assert np.allclose(server.approximate_values, truth, atol=1e-8)

    def test_query_until_convergence(self, graph, rng):
        server = StreamingAnalyticsServer(
            lambda: SSSP(source=0), graph,
            approx_iterations=2, until_convergence=True,
        )
        server.ingest(make_random_batch(server.graph, rng, 10, 10))
        result = server.query()
        truth = LigraEngine(SSSP(source=0)).run(server.graph,
                                                until_convergence=True)
        both_inf = np.isinf(result.values) & np.isinf(truth)
        assert np.allclose(result.values[~both_inf], truth[~both_inf])

    def test_query_cheaper_than_scratch(self, graph, rng):
        server = StreamingAnalyticsServer(
            lambda: LabelPropagation(num_labels=3, tolerance=1e-3,
                                     seed_every=3),
            graph, approx_iterations=5, exact_iterations=10,
        )
        server.ingest(make_random_batch(server.graph, rng, 5, 5))
        result = server.query()
        # The branch only runs the tail of the window (and selective
        # scheduling skips stabilised vertices), so it must do less edge
        # work than a 10-iteration from-scratch run.
        scratch = LigraEngine(LabelPropagation(num_labels=3))
        scratch.run(server.graph, 10)
        assert result.edge_computations < (
            scratch.metrics.edge_computations
        )
        assert server.queries_served == 1

    def test_query_seconds_matches_recorded_histogram(self, graph, rng):
        # One perf_counter measurement feeds both the QueryResult and
        # the serving.query_seconds histogram; they must agree exactly.
        server = StreamingAnalyticsServer(lambda: PageRank(), graph,
                                          approx_iterations=2,
                                          exact_iterations=6)
        server.ingest(make_random_batch(server.graph, rng, 5, 5))
        with scoped_registry() as registry:
            result = server.query()
            histogram = registry.histogram("serving.query_seconds")
        assert histogram.count == 1
        assert histogram.sum == result.seconds
        assert result.seconds > 0.0


def growth_poison_check(values):
    """Test poison rule: these workloads never grow the graph."""
    if values.shape[0] > 128:
        return f"unexpected growth to {values.shape[0]} vertices"
    return None


class TestDurability:
    def test_durable_ingest_matches_plain_ingest(self, graph, rng,
                                                 tmp_path):
        plain = StreamingAnalyticsServer(lambda: PageRank(), graph,
                                         approx_iterations=3)
        manager = RecoveryManager(str(tmp_path), checkpoint_every=2)
        durable = StreamingAnalyticsServer(lambda: PageRank(), graph,
                                           approx_iterations=3,
                                           recovery=manager)
        for _ in range(5):
            batch = make_random_batch(plain.graph, rng, 8, 8)
            plain.ingest(batch)
            durable.ingest(batch)
        assert np.array_equal(durable.approximate_values,
                              plain.approximate_values)
        assert manager.wal.next_seq == 5
        assert len(manager.checkpoints()) >= 1
        manager.close()

    def test_poison_batch_is_quarantined_and_serving_continues(
            self, graph, rng, tmp_path):
        manager = RecoveryManager(str(tmp_path), checkpoint_every=100,
                                  poison_check=growth_poison_check)
        server = StreamingAnalyticsServer(lambda: PageRank(), graph,
                                          approx_iterations=3,
                                          recovery=manager)
        shadow = StreamingAnalyticsServer(lambda: PageRank(), graph,
                                          approx_iterations=3)
        good = make_random_batch(server.graph, rng, 6, 6)
        server.ingest(good)
        shadow.ingest(good)
        poison = MutationBatch.from_edges(additions=[(0, 1)], grow_to=200)
        with scoped_registry() as registry:
            values = server.ingest(poison)  # must NOT raise
            assert registry.counter(
                "serving.batches_quarantined"
            ).value == 1
        # The engine was rolled back: the poison batch left no trace.
        assert np.array_equal(values, shadow.approximate_values)
        assert manager.quarantined == frozenset({1})
        assert server.batches_ingested == 2  # seqs stay positional
        # ... and the stream keeps flowing.
        after = make_random_batch(shadow.graph, rng, 6, 6)
        server.ingest(after)
        shadow.ingest(after)
        assert np.array_equal(server.approximate_values,
                              shadow.approximate_values)
        # ... and the branch loop still serves exact queries.
        result = server.query()
        assert np.array_equal(result.values, shadow.query().values)
        manager.close()

    def test_without_recovery_failures_propagate(self, graph, rng):
        server = StreamingAnalyticsServer(lambda: PageRank(), graph,
                                          approx_iterations=2)
        with scoped_failpoints() as registry:
            registry.arm("engine.refine", kind="fault", hit=1)
            with pytest.raises(InjectedFault):
                server.ingest(make_random_batch(server.graph, rng, 4, 4))

    def test_recover_resumes_counting_and_state(self, graph, rng,
                                                tmp_path):
        manager = RecoveryManager(str(tmp_path), checkpoint_every=2)
        server = StreamingAnalyticsServer(lambda: PageRank(), graph,
                                          approx_iterations=3,
                                          recovery=manager)
        for _ in range(3):
            server.ingest(make_random_batch(server.graph, rng, 6, 6))
        values = server.approximate_values.copy()
        manager.close()

        recovered = RecoveryManager(str(tmp_path),
                                    checkpoint_every=2).recover(
            lambda: PageRank()
        )
        assert recovered.batches_ingested == 3
        assert np.array_equal(recovered.approximate_values, values)
        assert recovered.approx_iterations == 3
        recovered.recovery.close()


class TestFromEngine:
    def test_wraps_without_rerunning(self, graph, rng):
        from repro.core.engine import GraphBoltEngine

        engine = GraphBoltEngine(PageRank(), num_iterations=4)
        engine.run(graph)
        engine.apply_mutations(make_random_batch(engine.graph, rng, 5, 5))
        snapshot = engine.values.copy()
        server = StreamingAnalyticsServer.from_engine(
            engine, lambda: PageRank(), batches_ingested=7,
        )
        assert server.approx_iterations == 4
        assert server.batches_ingested == 7
        assert np.array_equal(server.approximate_values, snapshot)
        # It is a live server: both loops still work.
        server.ingest(make_random_batch(server.graph, rng, 5, 5))
        truth = LigraEngine(PageRank()).run(server.graph, 4)
        assert np.allclose(server.approximate_values, truth, atol=1e-8)

    def test_unrun_engine_rejected(self, graph):
        from repro.core.engine import GraphBoltEngine

        engine = GraphBoltEngine(PageRank(), num_iterations=4)
        with pytest.raises(RuntimeError):
            StreamingAnalyticsServer.from_engine(engine,
                                                 lambda: PageRank())
