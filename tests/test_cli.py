"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import ALGORITHMS, ENGINES, main, parse_graph
from repro.obs import read_journal
from repro.obs.render import build_tree


class TestParseGraph:
    def test_rmat(self):
        graph = parse_graph("rmat:8:4")
        assert graph.num_vertices == 256

    def test_rmat_defaults(self):
        assert parse_graph("rmat").num_vertices == 1024

    def test_watts_strogatz(self):
        graph = parse_graph("ws:100:2")
        assert graph.num_vertices == 100

    def test_erdos_renyi(self):
        graph = parse_graph("er:50:200")
        assert graph.num_edges == 200

    def test_er_needs_both_args(self):
        with pytest.raises(ValueError):
            parse_graph("er:50")

    def test_paper(self):
        assert parse_graph("paper:WK").num_vertices == 2048

    def test_file_roundtrip(self, tmp_path):
        from repro.graph import io
        from repro.graph.generators import rmat

        graph = rmat(scale=6, edge_factor=4, seed=1)
        path = str(tmp_path / "g.npz")
        io.save_npz(graph, path)
        loaded = parse_graph(f"file:{path}")
        assert loaded.edge_set() == graph.edge_set()

    def test_unknown_spec(self):
        with pytest.raises(ValueError):
            parse_graph("quantum:3")


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "--graph", "rmat:7:4"]) == 0
        out = capsys.readouterr().out
        assert "vertices" in out and "128" in out

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_run_engines(self, engine, capsys):
        code = main([
            "run", "--engine", engine, "--graph", "rmat:7:4",
            "--batches", "2", "--batch-size", "10", "--iterations", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "edge_computations" in out

    def test_run_with_validation(self, capsys):
        code = main([
            "run", "--algorithm", "sssp", "--graph", "rmat:7:4",
            "--batches", "2", "--batch-size", "10", "--validate",
        ])
        assert code == 0
        assert "max_error" in capsys.readouterr().out

    def test_run_writes_output(self, tmp_path, capsys):
        out_path = str(tmp_path / "values.npz")
        main([
            "run", "--graph", "rmat:7:4", "--batches", "1",
            "--batch-size", "5", "--iterations", "3",
            "--output", out_path,
        ])
        with np.load(out_path) as data:
            assert data["values"].shape == (128,)

    def test_every_registered_algorithm_runs(self, capsys):
        for name in ALGORITHMS:
            graph = "rmat:6:4"
            code = main([
                "run", "--algorithm", name, "--graph", graph,
                "--batches", "1", "--batch-size", "5",
                "--iterations", "3",
            ])
            assert code == 0, name

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_positional_graph_spec_overrides_flag(self, capsys):
        code = main([
            "run", "rmat:7:4", "--batches", "1", "--batch-size", "5",
            "--iterations", "3",
        ])
        assert code == 0
        assert "rmat:7:4" in capsys.readouterr().out


class TestObservabilityCommands:
    def test_run_trace_out_journals_span_tree(self, tmp_path, capsys):
        path = str(tmp_path / "trace.jsonl")
        batches = 3
        code = main([
            "run", "rmat:7:4", "--algorithm", "pagerank",
            "--batches", str(batches), "--batch-size", "10",
            "--iterations", "4", "--trace-out", path,
        ])
        assert code == 0
        # Every line parses; the stream mixes run/batch/span records.
        records = read_journal(path)
        kinds = {record["type"] for record in records}
        assert {"run", "batch", "span"} <= kinds
        batch_records = read_journal(path, record_type="batch")
        assert [r["index"] for r in batch_records] == list(range(batches))
        # The span tree covers every batch with refine+forward phases.
        roots = build_tree(read_journal(path, record_type="span"))
        batch_roots = [r for r in roots if r["name"] == "batch"]
        assert len(batch_roots) == batches
        for root in batch_roots:
            phases = {child["name"] for child in root["children"]}
            assert {"refine", "forward"} <= phases

    def test_run_json_emits_parseable_lines(self, capsys):
        code = main([
            "run", "--graph", "rmat:7:4", "--batches", "2",
            "--batch-size", "10", "--iterations", "4", "--json",
        ])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["type"] == "run"
        assert records[0]["engine"] == "graphbolt"
        batch_records = [r for r in records if r["type"] == "batch"]
        assert [r["index"] for r in batch_records] == [0, 1]
        assert all("edge_computations" in r for r in batch_records)

    def test_run_json_with_validate_includes_error(self, capsys):
        code = main([
            "run", "--graph", "rmat:7:4", "--batches", "1",
            "--batch-size", "5", "--iterations", "4", "--json",
            "--validate",
        ])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        batch = [json.loads(l) for l in lines][-1]
        assert batch["max_error"] < 1e-6

    def test_trace_renders_phase_breakdown(self, capsys):
        code = main([
            "trace", "rmat:7:4", "--batches", "2", "--batch-size", "10",
            "--iterations", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "batch" in out
        assert "refine" in out
        assert "forward" in out
        assert "%" in out and "ms" in out

    def test_trace_with_journal(self, tmp_path, capsys):
        path = str(tmp_path / "trace.jsonl")
        code = main([
            "trace", "rmat:7:4", "--batches", "1", "--batch-size", "5",
            "--iterations", "3", "--trace-out", path,
        ])
        assert code == 0
        assert read_journal(path, record_type="span")

    def test_fuzz_trace_out_attaches_repro_dump(self, tmp_path, capsys):
        path = str(tmp_path / "fuzz.jsonl")
        code = main([
            "fuzz", "--plant-bug", "--workloads", "4", "--seed", "0",
            "--max-vertices", "24", "--max-batches", "3",
            "--trace-out", path,
        ])
        assert code == 0  # planted bug was caught
        repros = read_journal(path, record_type="repro")
        assert repros and "divergences" in repros[0]
        assert read_journal(path, record_type="span")


class TestRecoveryCommands:
    SERVE = ["serve", "rmat:6:4", "--batches", "3", "--batch-size", "8",
             "--iterations", "3"]

    def test_serve_ephemeral(self, capsys):
        assert main(self.SERVE) == 0
        out = capsys.readouterr().out
        assert "serve pagerank" in out and "durable" not in out

    def test_serve_recover_roundtrip(self, tmp_path, capsys):
        state = str(tmp_path / "state")
        assert main(self.SERVE + ["--wal", state,
                                  "--checkpoint-every", "2"]) == 0
        out = capsys.readouterr().out
        assert "WAL-logged" in out and "checkpoint generation" in out
        assert main(["recover", state]) == 0
        out = capsys.readouterr().out
        assert "3 batch(es) replayed into a live server" in out

    def test_recover_verify_is_bit_for_bit(self, tmp_path, capsys):
        state = str(tmp_path / "state")
        assert main(self.SERVE + ["--wal", state,
                                  "--checkpoint-every", "2"]) == 0
        capsys.readouterr()
        assert main(["recover", state, "--verify"]) == 0
        assert "bit-for-bit" in capsys.readouterr().out

    def test_recover_without_manifest_fails_loudly(self, tmp_path):
        from repro.recovery import RecoveryError

        with pytest.raises(RecoveryError, match="manifest"):
            main(["recover", str(tmp_path / "nothing-here")])

    def test_crash_fuzz_clean_campaign(self, capsys):
        code = main(["fuzz", "--crash", "--rounds", "2", "--seed", "0",
                     "--max-vertices", "24", "--max-batches", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "crash fuzz" in out and "0 mismatch(es)" in out

    def test_plant_fault_self_test(self, capsys):
        assert main(["fuzz", "--crash", "--plant-fault"]) == 0
        assert "failpoints are live" in capsys.readouterr().out

    def test_plant_fault_requires_crash(self, capsys):
        assert main(["fuzz", "--plant-fault"]) == 2


class TestBenchSubcommand:
    def test_bench_delegates(self, capsys, monkeypatch, tmp_path):
        from repro.bench import experiments as exp
        from repro.bench.__main__ import EXPERIMENTS

        monkeypatch.setattr(
            "repro.bench.reporting.results_dir", lambda: str(tmp_path)
        )
        monkeypatch.setitem(
            EXPERIMENTS, "figure4",
            lambda: exp.experiment_figure4(num_iterations=3),
        )
        assert main(["bench", "figure4"]) == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_bench_unknown_experiment(self, capsys):
        assert main(["bench", "bogus"]) == 2


class TestResilientServe:
    SERVE = ["serve", "rmat:6:4", "--batches", "6", "--batch-size", "8",
             "--iterations", "3"]

    def test_serve_status_prints_health(self, capsys):
        code = main(self.SERVE + ["--admission", "coalesce",
                                  "--queue-capacity", "2",
                                  "--burst", "3", "--query-every", "2",
                                  "--status"])
        assert code == 0
        out = capsys.readouterr().out
        health_line = next(line for line in out.splitlines()
                           if line.startswith("health: "))
        health = json.loads(health_line[len("health: "):])
        assert health["queue_depth"] == 0
        assert health["breaker_state"] == "closed"
        assert health["submitted"] == 6
        assert health["coalesced"] > 0

    def test_poison_requires_wal(self, capsys):
        assert main(self.SERVE + ["--poison-every", "2"]) == 2
        assert "--wal" in capsys.readouterr().out

    def test_overload_soak_roundtrip(self, tmp_path, capsys):
        from repro.testing.faults import scoped_failpoints

        state = str(tmp_path / "state")
        journal_path = str(tmp_path / "health.jsonl")
        with scoped_failpoints():
            code = main(self.SERVE + [
                "--batches", "12", "--wal", state,
                "--checkpoint-every", "4",
                "--admission", "shed-oldest", "--queue-capacity", "4",
                "--burst", "2", "--poison-every", "3",
                "--query-every", "2", "--deadline", "0.5",
                "--breaker-quarantine-threshold", "2",
                "--breaker-cooldown", "2",
                "--health-journal", journal_path, "--status",
            ])
        assert code == 0
        out = capsys.readouterr().out
        assert "SOAK FAIL" not in out
        with open(journal_path) as handle:
            records = [json.loads(line) for line in handle]
        assert records and all(r["event"] == "health" for r in records)
        final = records[-1]
        assert final["queue_depth"] == 0
        # Bounded damage: no more quarantines than planted poisons.
        assert final["quarantine_count"] <= 4
        assert final["queries_served"] >= 6

    def test_recover_verify_skips_quarantined_batches(self, tmp_path,
                                                      capsys):
        from repro.testing.faults import scoped_failpoints

        state = str(tmp_path / "state")
        with scoped_failpoints():
            code = main(self.SERVE + [
                "--batches", "8", "--wal", state,
                "--checkpoint-every", "3", "--poison-every", "3",
            ])
        assert code == 0
        capsys.readouterr()
        # Synchronous serving: seed replay minus the skip-marked seqs
        # reconstructs the live stream bit-for-bit.
        assert main(["recover", state, "--verify"]) == 0
        assert "bit-for-bit" in capsys.readouterr().out


class TestSLOAndDashCommands:
    SERVE = ["serve", "rmat:6:4", "--batches", "14", "--batch-size",
             "8", "--iterations", "3"]

    def test_planted_fault_fires_pinned_alert_and_replays(
            self, tmp_path, capsys):
        """The acceptance pin, end to end: plant at 10, page at 11,
        and the same journal replays the violation through dash."""
        journal = str(tmp_path / "wide.jsonl")
        code = main(self.SERVE + ["--slo", "soak", "--wide-events",
                                  journal, "--plant-latency", "10:9.9"])
        assert code == 0
        out = capsys.readouterr().out
        assert "slo: 1 alert(s) fired" in out
        assert ("batch 11: soak-ingest-latency "
                "fast=5.0x slow=2.5x") in out
        assert "[runbook: overload-and-degradation]" in out
        alerts = read_journal(journal, record_type="alert")
        assert [(a["slo"], a["state"], a["index"]) for a in alerts] == [
            ("soak-ingest-latency", "firing", 11)]
        assert len(read_journal(journal, record_type="wide")) == 14
        # Replay: the dashboard sees the violation and the seq check
        # is clean.
        assert main(["dash", "--once", "--from-journal", journal,
                     "--slo", "soak", "--expect-alert",
                     "soak-ingest-latency"]) == 0
        out = capsys.readouterr().out
        assert "FIRING" in out
        assert "Sequence check: ok" in out
        # The very same journal asserted clean must fail.
        assert main(["dash", "--once", "--from-journal", journal,
                     "--expect-clean"]) == 1
        assert "EXPECT FAIL" in capsys.readouterr().out

    def test_clean_run_fires_nothing(self, tmp_path, capsys):
        journal = str(tmp_path / "wide.jsonl")
        assert main(self.SERVE + ["--slo", "soak", "--wide-events",
                                  journal]) == 0
        assert "slo: 0 alert(s) fired" in capsys.readouterr().out
        assert main(["dash", "--once", "--from-journal", journal,
                     "--slo", "soak", "--expect-clean"]) == 0
        capsys.readouterr()
        assert main(["dash", "--once", "--from-journal", journal,
                     "--slo", "soak", "--expect-alert", "any"]) == 1
        assert "EXPECT FAIL" in capsys.readouterr().out

    def test_shared_wide_and_health_journal(self, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        assert main(self.SERVE + ["--wide-events", path,
                                  "--health-journal", path]) == 0
        capsys.readouterr()
        records = read_journal(path)
        kinds = {record["type"] for record in records}
        assert {"wide", "health"} <= kinds
        assert main(["dash", "--once", "--from-journal", path]) == 0
        out = capsys.readouterr().out
        assert "Sequence check: ok" in out
        assert "breaker=closed" in out

    def test_dash_missing_journal(self, tmp_path, capsys):
        code = main(["dash", "--once", "--from-journal",
                     str(tmp_path / "absent.jsonl")])
        assert code == 2
        assert "journal not found" in capsys.readouterr().out

    def test_metrics_out_renders_prometheus_text(self, tmp_path,
                                                 capsys):
        metrics = str(tmp_path / "metrics.prom")
        assert main(self.SERVE + ["--slo", "soak", "--metrics-out",
                                  metrics]) == 0
        assert f"metrics -> {metrics}" in capsys.readouterr().out
        with open(metrics) as handle:
            text = handle.read()
        assert "repro_slo_soak_ingest_latency_fast_burn" in text
        assert "repro_slo_alerts_fired" in text

    def test_serve_metrics_endpoint_announced(self, capsys):
        assert main(self.SERVE[:2] + ["--batches", "2", "--batch-size",
                                      "4", "--iterations", "2",
                                      "--serve-metrics", "0"]) == 0
        assert "metrics endpoint: http://" in capsys.readouterr().out

    def test_slo_lint_bundled_files_pass(self, capsys):
        assert main(["slo-lint"]) == 0
        out = capsys.readouterr().out
        assert "soak.yaml: ok" in out
        assert "serving.yaml: ok" in out
        assert "0 with problems" in out

    def test_slo_lint_flags_broken_files(self, tmp_path, capsys):
        bad = tmp_path / "bad.yaml"
        bad.write_text("schema: 1\nslos: []\n")
        assert main(["slo-lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "bad.yaml: FAIL" in out
        assert "1 with problems" in out

    def test_slo_lint_empty_dir_fails(self, tmp_path, capsys):
        assert main(["slo-lint", str(tmp_path)]) == 1

    def test_trace_warns_on_ring_overflow(self, monkeypatch, capsys):
        from repro.obs.trace import Tracer as RealTracer

        monkeypatch.setattr(
            "repro.cli.Tracer",
            lambda sink=None: RealTracer(capacity=2, sink=sink))
        assert main(["trace", "rmat:6:4", "--batches", "2",
                     "--batch-size", "4", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "WARNING: span ring buffer overflowed" in out
        assert "--trace-out" in out

    def test_trace_quiet_without_overflow(self, capsys):
        assert main(["trace", "rmat:6:4", "--batches", "2",
                     "--batch-size", "4", "--iterations", "2"]) == 0
        assert "WARNING" not in capsys.readouterr().out


class TestReplicatedServe:
    SERVE = ["serve", "rmat:6:4", "--batches", "6", "--batch-size", "8",
             "--iterations", "3"]

    def test_replicas_require_wal(self, capsys):
        assert main(self.SERVE + ["--replicas", "2"]) == 2
        assert "--wal" in capsys.readouterr().out

    def test_kill_replica_requires_replicas(self, tmp_path, capsys):
        assert main(self.SERVE + ["--wal", str(tmp_path / "s"),
                                  "--kill-replica", "0:2"]) == 2
        assert "--replicas" in capsys.readouterr().out

    def test_bad_kill_spec_rejected(self, tmp_path, capsys):
        assert main(self.SERVE + ["--wal", str(tmp_path / "s"),
                                  "--replicas", "2",
                                  "--kill-replica", "nope"]) == 2
        assert "I:AT" in capsys.readouterr().out

    def test_fuzz_replicated_requires_crash(self, capsys):
        assert main(["fuzz", "--replicated"]) == 2
        assert "--crash" in capsys.readouterr().out

    def test_replicated_soak_with_kill_and_restart(self, tmp_path,
                                                   capsys):
        state = str(tmp_path / "state")
        code = main(self.SERVE + [
            "--wal", state, "--checkpoint-every", "2",
            "--replicas", "2", "--kill-replica", "0:2:4", "--status",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "SOAK FAIL" not in out
        summary = next(line for line in out.splitlines()
                       if line.startswith("replication: "))
        assert "epoch=1" in summary
        assert "r0=up" in summary and "r1=up" in summary
        # The same tree inspects cleanly offline.
        assert main(["replication-status", state]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["epoch"] == 1
        assert report["writer"]["next_seq"] == 6
        assert {name: info["next_seq"]
                for name, info in report["replicas"].items()} == {
            "r0": 6, "r1": 6}

    def test_replication_status_missing_dir(self, tmp_path, capsys):
        from repro.serving import ReplicationError

        with pytest.raises(ReplicationError, match="not a directory"):
            main(["replication-status", str(tmp_path / "absent")])


class TestDashExpectResolved:
    def journal(self, tmp_path, violate=range(6, 10), total=16):
        path = tmp_path / "wide.jsonl"
        lines = []
        for index in range(total):
            staleness = 5.0 if index in violate else 0.0
            lines.append(json.dumps({
                "type": "wide", "kind": "batch", "seq": index,
                "index": index, "seconds": 0.01,
                "ingest_seconds": 0.01, "breaker_state": "closed",
                "queue_depth": 0,
                "samples": {"replica_staleness": staleness},
            }))
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_fired_and_resolved_assertions_pass(self, tmp_path, capsys):
        """A replica-staleness excursion that later clears must satisfy
        both --expect-alert and --expect-resolved on replay."""
        journal = self.journal(tmp_path)
        assert main(["dash", "--once", "--from-journal", journal,
                     "--slo", "replication",
                     "--expect-alert", "replica-staleness",
                     "--expect-resolved", "replica-staleness"]) == 0
        out = capsys.readouterr().out
        assert "EXPECT FAIL" not in out

    def test_unresolved_page_fails_the_expectation(self, tmp_path,
                                                   capsys):
        # The violation runs to the end of the journal: fired but
        # never resolved.
        journal = self.journal(tmp_path, violate=range(6, 16))
        assert main(["dash", "--once", "--from-journal", journal,
                     "--slo", "replication",
                     "--expect-alert", "replica-staleness",
                     "--expect-resolved", "replica-staleness"]) == 1
        assert "EXPECT FAIL" in capsys.readouterr().out

    def test_clean_journal_fails_resolved_expectation(self, tmp_path,
                                                      capsys):
        journal = self.journal(tmp_path, violate=())
        assert main(["dash", "--once", "--from-journal", journal,
                     "--slo", "replication",
                     "--expect-resolved", "any"]) == 1
        assert "EXPECT FAIL" in capsys.readouterr().out
