"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import ALGORITHMS, ENGINES, main, parse_graph


class TestParseGraph:
    def test_rmat(self):
        graph = parse_graph("rmat:8:4")
        assert graph.num_vertices == 256

    def test_rmat_defaults(self):
        assert parse_graph("rmat").num_vertices == 1024

    def test_watts_strogatz(self):
        graph = parse_graph("ws:100:2")
        assert graph.num_vertices == 100

    def test_erdos_renyi(self):
        graph = parse_graph("er:50:200")
        assert graph.num_edges == 200

    def test_er_needs_both_args(self):
        with pytest.raises(ValueError):
            parse_graph("er:50")

    def test_paper(self):
        assert parse_graph("paper:WK").num_vertices == 2048

    def test_file_roundtrip(self, tmp_path):
        from repro.graph import io
        from repro.graph.generators import rmat

        graph = rmat(scale=6, edge_factor=4, seed=1)
        path = str(tmp_path / "g.npz")
        io.save_npz(graph, path)
        loaded = parse_graph(f"file:{path}")
        assert loaded.edge_set() == graph.edge_set()

    def test_unknown_spec(self):
        with pytest.raises(ValueError):
            parse_graph("quantum:3")


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "--graph", "rmat:7:4"]) == 0
        out = capsys.readouterr().out
        assert "vertices" in out and "128" in out

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_run_engines(self, engine, capsys):
        code = main([
            "run", "--engine", engine, "--graph", "rmat:7:4",
            "--batches", "2", "--batch-size", "10", "--iterations", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "edge_computations" in out

    def test_run_with_validation(self, capsys):
        code = main([
            "run", "--algorithm", "sssp", "--graph", "rmat:7:4",
            "--batches", "2", "--batch-size", "10", "--validate",
        ])
        assert code == 0
        assert "max_error" in capsys.readouterr().out

    def test_run_writes_output(self, tmp_path, capsys):
        out_path = str(tmp_path / "values.npz")
        main([
            "run", "--graph", "rmat:7:4", "--batches", "1",
            "--batch-size", "5", "--iterations", "3",
            "--output", out_path,
        ])
        with np.load(out_path) as data:
            assert data["values"].shape == (128,)

    def test_every_registered_algorithm_runs(self, capsys):
        for name in ALGORITHMS:
            graph = "rmat:6:4"
            code = main([
                "run", "--algorithm", name, "--graph", graph,
                "--batches", "1", "--batch-size", "5",
                "--iterations", "3",
            ])
            assert code == 0, name

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestBenchSubcommand:
    def test_bench_delegates(self, capsys, monkeypatch, tmp_path):
        from repro.bench import experiments as exp
        from repro.bench.__main__ import EXPERIMENTS

        monkeypatch.setattr(
            "repro.bench.reporting.results_dir", lambda: str(tmp_path)
        )
        monkeypatch.setitem(
            EXPERIMENTS, "figure4",
            lambda: exp.experiment_figure4(num_iterations=3),
        )
        assert main(["bench", "figure4"]) == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_bench_unknown_experiment(self, capsys):
        assert main(["bench", "bogus"]) == 2
