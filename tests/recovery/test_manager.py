"""Tests for RecoveryManager: checkpoints, rotation, replay, quarantine."""

import os

import numpy as np
import pytest

from repro.algorithms import PageRank
from repro.core.engine import GraphBoltEngine
from repro.graph.generators import rmat
from repro.obs.registry import scoped_registry
from repro.recovery import RecoveryError, RecoveryManager, default_poison_check
from repro.testing.faults import scoped_failpoints
from tests.conftest import make_random_batch

ITERATIONS = 4


@pytest.fixture
def graph():
    return rmat(scale=5, edge_factor=4, seed=11, weighted=True)


def factory():
    return PageRank()


def fresh_engine(graph):
    engine = GraphBoltEngine(factory(), num_iterations=ITERATIONS)
    engine.run(graph)
    return engine


def growth_poison_check(values):
    """A deterministic poison rule for tests: the workload never grows
    the graph, so any growth marks the batch that caused it as poison.
    (The NaN default rule is unit-tested in TestPoisonCheck; NaN weights
    cannot ride through a MutationBatch, which rejects them up front.)"""
    if values.shape[0] > 32:
        return f"unexpected growth to {values.shape[0]} vertices"
    return None


def growing_batch():
    from repro.graph.mutation import MutationBatch

    return MutationBatch.from_edges(additions=[(0, 1)], grow_to=48)


class TestPoisonCheck:
    def test_nan_is_poison(self):
        values = np.array([1.0, np.nan, 2.0])
        reason = default_poison_check(values)
        assert reason is not None and "vertex 1" in reason

    def test_inf_is_not_poison(self):
        assert default_poison_check(np.array([1.0, np.inf])) is None
        assert default_poison_check(np.array([0.5, 0.5])) is None


class TestCheckpointing:
    def test_restore_equals_uninterrupted(self, tmp_path, graph, rng):
        live = fresh_engine(graph)
        manager = RecoveryManager(str(tmp_path), checkpoint_every=2)
        manager.ensure_initial_checkpoint(live)
        for _ in range(5):
            batch = make_random_batch(live.graph, rng, 6, 6)
            seq = manager.log_batch(batch)
            live.apply_mutations(batch)
            manager.maybe_checkpoint(live, seq + 1)
        manager.close()

        restored, seq = RecoveryManager(str(tmp_path)).restore_engine(
            factory
        )
        assert seq == 5
        assert np.array_equal(restored.values, live.values)
        assert restored.graph.edge_set() == live.graph.edge_set()

    def test_rotation_retains_and_gcs(self, tmp_path, graph, rng):
        live = fresh_engine(graph)
        manager = RecoveryManager(str(tmp_path), checkpoint_every=1,
                                  retain=2, segment_records=1)
        manager.ensure_initial_checkpoint(live)
        for index in range(6):
            batch = make_random_batch(live.graph, rng, 4, 4)
            seq = manager.log_batch(batch)
            live.apply_mutations(batch)
            manager.maybe_checkpoint(live, seq + 1)
        generations = manager.checkpoints()
        assert [seq for seq, _ in generations] == [5, 6]
        # WAL segments below the oldest retained generation are gone.
        assert all(seq >= 5 for seq, _ in manager.wal.replay())
        manager.close()

    def test_cadence(self, tmp_path, graph):
        live = fresh_engine(graph)
        manager = RecoveryManager(str(tmp_path), checkpoint_every=3,
                                  retain=10)
        manager.ensure_initial_checkpoint(live)
        written = [manager.maybe_checkpoint(live, seq)
                   for seq in range(1, 8)]
        assert written == [False, False, True, False, False, True, False]
        manager.close()

    def test_corrupt_newest_falls_back(self, tmp_path, graph, rng):
        live = fresh_engine(graph)
        manager = RecoveryManager(str(tmp_path), checkpoint_every=100,
                                  retain=5)
        manager.ensure_initial_checkpoint(live)
        for _ in range(3):
            batch = make_random_batch(live.graph, rng, 5, 5)
            manager.log_batch(batch)
            live.apply_mutations(batch)
        manager.checkpoint(live, 3)
        # Smash the newest generation; gen 0 + full WAL must re-cover it.
        newest = manager.checkpoints()[-1][1]
        with open(newest, "r+b") as stream:
            stream.seek(100)
            stream.write(b"\x00" * 64)
        manager.close()

        with scoped_registry() as registry:
            restored, seq = RecoveryManager(str(tmp_path)).restore_engine(
                factory
            )
            assert registry.counter(
                "recovery.checkpoints_rejected"
            ).value == 1
        assert seq == 3
        assert np.array_equal(restored.values, live.values)

    def test_no_checkpoint_raises(self, tmp_path):
        manager = RecoveryManager(str(tmp_path))
        with pytest.raises(RecoveryError, match="no loadable checkpoint"):
            manager.restore_engine(factory)
        manager.close()

    def test_stale_temp_files_removed(self, tmp_path, graph):
        manager = RecoveryManager(str(tmp_path))
        manager.ensure_initial_checkpoint(fresh_engine(graph))
        manager.close()
        stale = os.path.join(str(tmp_path), "checkpoints", "x.npz.tmp")
        open(stale, "w").close()
        RecoveryManager(str(tmp_path)).close()
        assert not os.path.exists(stale)


class TestQuarantine:
    def test_replay_quarantines_poison_and_restarts(self, tmp_path, graph,
                                                    rng):
        live = fresh_engine(graph)
        manager = RecoveryManager(str(tmp_path), checkpoint_every=100,
                                  poison_check=growth_poison_check)
        manager.ensure_initial_checkpoint(live)
        good_before = make_random_batch(live.graph, rng, 5, 5)
        manager.log_batch(good_before)
        live.apply_mutations(good_before)
        manager.log_batch(growing_batch())  # seq 1: poison
        good_after = make_random_batch(live.graph, rng, 5, 5)
        manager.log_batch(good_after)
        live.apply_mutations(good_after)
        manager.close()

        with scoped_registry() as registry:
            reopened = RecoveryManager(str(tmp_path), checkpoint_every=100,
                                       poison_check=growth_poison_check)
            restored, seq = reopened.restore_engine(factory)
            assert registry.counter(
                "recovery.batches_quarantined"
            ).value == 1
        assert reopened.quarantined == frozenset({1})
        assert "growth" in reopened.quarantine_reasons()[1]
        assert seq == 3  # quarantined records still count positionally
        assert np.array_equal(restored.values, live.values)
        reopened.close()

        # The verdict is durable: a third open skips seq 1 immediately.
        again = RecoveryManager(str(tmp_path), checkpoint_every=100,
                                poison_check=growth_poison_check)
        assert again.quarantined == frozenset({1})
        restored2, _ = again.restore_engine(factory)
        assert np.array_equal(restored2.values, live.values)
        again.close()


class TestRetries:
    def test_transient_fault_is_retried(self, tmp_path, graph, rng):
        live = fresh_engine(graph)
        with scoped_registry() as registry, scoped_failpoints() as points:
            manager = RecoveryManager(str(tmp_path), retry_backoff=0.0)
            manager.ensure_initial_checkpoint(live)
            points.arm("wal.append", kind="fault", hit=1)
            seq = manager.log_batch(make_random_batch(live.graph, rng))
            assert seq == 0
            assert registry.counter("recovery.retries").value == 1
            assert points.fired_sites() == ["wal.append"]
            manager.close()

    def test_persistent_fault_exhausts_retries(self, tmp_path):
        manager = RecoveryManager(str(tmp_path), retry_attempts=3,
                                  retry_backoff=0.0)

        def always_fails():
            raise OSError("disk on fire")

        with scoped_registry() as registry:
            with pytest.raises(OSError, match="disk on fire"):
                manager._with_retries("test", always_fails)
            assert registry.counter("recovery.retries").value == 3
        manager.close()


class TestDirectoryGuards:
    def test_attach_to_populated_directory_rejected(self, tmp_path, graph):
        manager = RecoveryManager(str(tmp_path))
        manager.ensure_initial_checkpoint(fresh_engine(graph))
        manager.close()
        reopened = RecoveryManager(str(tmp_path))
        with pytest.raises(RecoveryError, match="already contains"):
            reopened.ensure_initial_checkpoint(fresh_engine(graph))
        reopened.close()

    def test_manifest_roundtrip(self, tmp_path):
        manager = RecoveryManager(str(tmp_path))
        manager.write_manifest({"algorithm": "pagerank", "seed": 3})
        assert manager.read_manifest() == {
            "algorithm": "pagerank", "seed": 3,
        }
        manager.close()

    def test_missing_manifest_raises(self, tmp_path):
        manager = RecoveryManager(str(tmp_path))
        with pytest.raises(RecoveryError, match="manifest"):
            manager.read_manifest()
        manager.close()


class TestShippingSurface:
    """The contracts replication ships over: gap-checked sealed
    segments, adopted checkpoints, and the merged skip ledger."""

    def logged(self, tmp_path, graph, rng, count=5):
        manager = RecoveryManager(str(tmp_path), checkpoint_every=100,
                                  segment_records=2)
        for _ in range(count):
            manager.log_batch(make_random_batch(graph, rng, 4, 4))
        return manager

    def test_sealed_segments_are_contiguous(self, tmp_path, graph, rng):
        manager = self.logged(tmp_path, graph, rng)
        sealed = manager.sealed_segments()
        assert [(s.first_seq, s.end_seq) for s in sealed] == [
            (0, 2), (2, 4)]
        assert manager.seal_active_segment() is True
        assert manager.sealed_segments()[-1].end_seq == 5
        manager.close()

    def test_vanished_segment_raises_instead_of_skipping(
            self, tmp_path, graph, rng):
        from repro.recovery import SegmentGapError

        manager = self.logged(tmp_path, graph, rng)
        victim = manager.sealed_segments()[0]
        os.remove(victim.path)
        # Shipping or replaying past the hole would fork replica state
        # from the writer's: the gap check names the missing range.
        with pytest.raises(SegmentGapError, match="vanished"):
            manager.sealed_segments()
        manager.close()

    def test_adopt_checkpoint_installs_the_writer_blob(
            self, tmp_path, graph, rng):
        live = fresh_engine(graph)
        writer = RecoveryManager(str(tmp_path / "writer"),
                                 checkpoint_every=100)
        path = writer.checkpoint(live, 4)
        with open(path, "rb") as stream:
            blob = stream.read()
        writer.close()

        replica = RecoveryManager(str(tmp_path / "replica"),
                                  checkpoint_every=100)
        adopted = replica.adopt_checkpoint(4, blob)
        assert replica.checkpoints() == [(4, adopted)]
        # Byte-for-byte adoption: the restored engine is the writer's.
        restored, seq = replica.restore_engine(factory)
        assert seq == 4
        assert np.array_equal(restored.values, live.values)
        # Re-adopting an existing generation is an idempotent no-op.
        assert replica.adopt_checkpoint(4, b"garbage") == adopted
        restored2, _ = replica.restore_engine(factory)
        assert np.array_equal(restored2.values, live.values)
        replica.close()

    def test_import_skip_marks_keeps_local_entries(self, tmp_path):
        manager = RecoveryManager(str(tmp_path), checkpoint_every=100)
        manager.shed(0, "queue over capacity 1")
        added = manager.import_skip_marks(
            {0: "writer says otherwise", 3: "shed: writer pressure"})
        assert added == 1
        reasons = manager.quarantine_reasons()
        assert reasons[0] == "shed: queue over capacity 1"  # local wins
        assert reasons[3] == "shed: writer pressure"
        # The merged ledger is durable.
        manager.close()
        reopened = RecoveryManager(str(tmp_path), checkpoint_every=100)
        assert reopened.quarantined == frozenset({0, 3})
        assert reopened.poison_quarantined() == frozenset()
        reopened.close()
