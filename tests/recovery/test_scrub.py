"""Tests for the self-healing integrity scrubber.

The property stack, bottom up:

- a single flipped bit in ANY of the six snapshot-store segment
  arrays is detected by the scan (the CRC actually covers the
  payload, not just the header);
- single-direction damage is repaired **bit-for-bit** by rebuilding
  the damaged direction from the clean one -- proven by comparing the
  repaired file bytes against a pre-damage oracle, and gated on CRC
  equality *before* anything is replaced;
- damage in both directions cannot be rebuilt standalone: the
  generation is quarantined and dropped from the store manifest so
  nothing can open it again;
- a corrupt record in a sealed WAL segment is detected; when a newer
  checkpoint covers that history the repair garbage-collects the
  dead prefix, and when it does not the finding stays unrepaired
  (re-ship from a writer is the only honest fix);
- a corrupt checkpoint is sidelined so recovery falls back to the
  next loadable generation;
- at the cluster level, ``scrub(repair=True)`` escalates through the
  repair tiers (standalone, re-ship, full rebuild) and the
  ``integrity_quarantine`` ledger gates query routing in between.
"""

import json
import os

import numpy as np
import pytest

from repro.algorithms import PageRank
from repro.graph.generators import rmat
from repro.graph.storage import ARRAY_NAMES, MmapStore
from repro.obs.registry import scoped_registry
from repro.recovery import (
    IntegrityScrubber,
    RecoveryManager,
    scrub_state_dir,
)
from repro.serving import StreamingAnalyticsServer
from tests.conftest import make_random_batch

_HEADER_SIZE = 64  # segment header; flips land in the payload


@pytest.fixture
def graph():
    return rmat(scale=6, edge_factor=4, seed=3, weighted=True)


def flip_payload_byte(path):
    with open(path, "rb") as stream:
        data = bytearray(stream.read())
    assert len(data) > _HEADER_SIZE
    data[_HEADER_SIZE + len(data) // 2] ^= 0x01
    with open(path, "wb") as stream:
        stream.write(data)


def publish_store(root, graph):
    """Publish one generation; return (snapshot_id, array -> file)."""
    MmapStore(str(root)).publish(graph)
    with open(os.path.join(str(root), "manifest.json"),
              encoding="utf-8") as stream:
        manifest = json.load(stream)
    snapshot = manifest["current"]
    files = {name: meta["file"] for name, meta
             in manifest["snapshots"][snapshot]["arrays"].items()}
    return snapshot, files


def read_files(root, files):
    contents = {}
    for name, file_name in files.items():
        with open(os.path.join(str(root), file_name), "rb") as stream:
            contents[name] = stream.read()
    return contents


# ----------------------------------------------------------------------
# Store segments: detection
# ----------------------------------------------------------------------
class TestStoreScan:
    def test_clean_store_scans_clean(self, graph, tmp_path):
        publish_store(tmp_path / "store", graph)
        scrubber = IntegrityScrubber(str(tmp_path / "state"),
                                     store_root=str(tmp_path / "store"))
        report = scrubber.scan()
        assert report.ok
        assert report.checked["store_segments"] == len(ARRAY_NAMES)
        # The persisted report is the dashboard / CI artifact surface.
        with open(tmp_path / "state" / "scrub-report.json",
                  encoding="utf-8") as stream:
            persisted = json.load(stream)
        assert persisted["ok"] is True

    @pytest.mark.parametrize("array", ARRAY_NAMES)
    def test_one_flipped_bit_in_any_array_is_found(self, graph,
                                                   tmp_path, array):
        store = tmp_path / "store"
        snapshot, files = publish_store(store, graph)
        flip_payload_byte(os.path.join(str(store), files[array]))
        with scoped_registry() as registry:
            report = IntegrityScrubber(
                str(tmp_path / "state"), store_root=str(store)
            ).scan()
            assert registry.counter(
                "scrub.corruption_found").value == 1
        assert not report.ok
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.kind == "store"
        assert finding.array == array
        assert finding.snapshot == snapshot
        assert not finding.repaired


# ----------------------------------------------------------------------
# Store segments: repair
# ----------------------------------------------------------------------
class TestStoreRepair:
    @pytest.mark.parametrize("array", ["out_targets", "in_sources",
                                       "out_weights", "in_offsets"])
    def test_single_direction_damage_repairs_bit_for_bit(
            self, graph, tmp_path, array):
        store = tmp_path / "store"
        _snapshot, files = publish_store(store, graph)
        oracle = read_files(store, files)
        flip_payload_byte(os.path.join(str(store), files[array]))
        report = scrub_state_dir(str(tmp_path / "state"),
                                 store_root=str(store), repair=True)
        assert report.repaired
        finding = report.findings[0]
        assert finding.repaired
        assert "rebuilt" in finding.repair
        # Bit-for-bit: every file equals the pre-damage oracle.
        assert read_files(store, files) == oracle
        # And a fresh scan agrees.
        assert IntegrityScrubber(
            str(tmp_path / "state"), store_root=str(store)
        ).scan(write_report=False).ok

    def test_both_directions_damaged_quarantines_the_generation(
            self, graph, tmp_path):
        store = tmp_path / "store"
        snapshot, files = publish_store(store, graph)
        flip_payload_byte(os.path.join(str(store),
                                       files["out_targets"]))
        flip_payload_byte(os.path.join(str(store),
                                       files["in_sources"]))
        with scoped_registry() as registry:
            report = scrub_state_dir(str(tmp_path / "state"),
                                     store_root=str(store),
                                     repair=True)
            assert registry.counter("scrub.quarantined").value == 1
        # With a manifest the sideline counts as handled: nothing can
        # open the rotten generation again.
        assert report.repaired
        for finding in report.findings:
            assert "quarantined" in finding.repair
        quarantine = store / "quarantine"
        assert sorted(os.listdir(quarantine)) == sorted(files.values())
        with open(store / "manifest.json", encoding="utf-8") as stream:
            manifest = json.load(stream)
        assert snapshot not in manifest["snapshots"]
        assert manifest["current"] != snapshot


# ----------------------------------------------------------------------
# WAL segments and checkpoints
# ----------------------------------------------------------------------
def drive_state_dir(graph, root, batches=7, checkpoint_every=2):
    """A writer state dir with sealed WAL segments + checkpoints:
    with 7 batches, checkpoints land at 2/4/6 (4 and 6 retained) and
    the WAL keeps segment [4,6) (sealed, covered by checkpoint 6)
    plus the open tail [6,7)."""
    rng = np.random.default_rng(17)
    manager = RecoveryManager(str(root),
                              checkpoint_every=checkpoint_every,
                              retain=2, segment_records=2)
    server = StreamingAnalyticsServer(
        lambda: PageRank(), graph, approx_iterations=3,
        recovery=manager,
    )
    for _ in range(batches):
        server.ingest(make_random_batch(graph, rng, 6, 6))
    return server


def wal_segments(root):
    wal_dir = os.path.join(str(root), "wal")
    return sorted(name for name in os.listdir(wal_dir)
                  if name.endswith(".jsonl"))


class TestWalScrub:
    def test_clean_state_dir_scans_clean(self, graph, tmp_path):
        drive_state_dir(graph, tmp_path)
        report = IntegrityScrubber(str(tmp_path)).scan()
        assert report.ok, [f.detail for f in report.findings]
        assert report.checked["wal_segments"] == 2
        assert report.checked["checkpoints"] == 2

    def test_bit_rot_in_a_sealed_segment_is_found(self, graph,
                                                  tmp_path):
        drive_state_dir(graph, tmp_path)
        sealed = wal_segments(tmp_path)[0]
        flip_payload_byte(os.path.join(str(tmp_path), "wal", sealed))
        report = IntegrityScrubber(str(tmp_path)).scan()
        assert not report.ok
        assert report.findings[0].kind == "wal"
        assert "corrupt record" in report.findings[0].detail

    def test_truncated_sealed_segment_is_found(self, graph, tmp_path):
        drive_state_dir(graph, tmp_path)
        path = os.path.join(str(tmp_path), "wal",
                            wal_segments(tmp_path)[0])
        with open(path, "rb") as stream:
            data = stream.read()
        with open(path, "wb") as stream:
            stream.write(data[:-3])  # tear the final record's tail
        report = IntegrityScrubber(str(tmp_path)).scan()
        assert not report.ok
        assert any("unterminated" in f.detail or "corrupt record"
                   in f.detail for f in report.findings)

    def test_covered_damage_is_garbage_collected(self, graph,
                                                 tmp_path):
        drive_state_dir(graph, tmp_path)
        sealed = wal_segments(tmp_path)[0]
        flip_payload_byte(os.path.join(str(tmp_path), "wal", sealed))
        report = IntegrityScrubber(str(tmp_path)).repair()
        assert report.repaired
        assert "garbage-collected" in report.findings[0].repair
        # The dead prefix was sidelined whole; the open tail survives.
        assert sealed not in wal_segments(tmp_path)
        assert os.path.exists(os.path.join(str(tmp_path), "wal",
                                           "quarantine", sealed))
        assert IntegrityScrubber(str(tmp_path)).scan(
            write_report=False).ok

    def test_uncovered_damage_stays_unrepaired(self, graph, tmp_path):
        drive_state_dir(graph, tmp_path)
        tail = wal_segments(tmp_path)[-1]  # above the newest checkpoint
        flip_payload_byte(os.path.join(str(tmp_path), "wal", tail))
        report = IntegrityScrubber(str(tmp_path)).repair()
        assert not report.repaired
        finding = report.findings[0]
        assert not finding.repaired
        assert "re-ship from a writer" in finding.repair
        # Nothing was destroyed in the failed attempt.
        assert tail in wal_segments(tmp_path)

    def test_corrupt_checkpoint_is_sidelined(self, graph, tmp_path):
        drive_state_dir(graph, tmp_path)
        ckpt_dir = os.path.join(str(tmp_path), "checkpoints")
        oldest = sorted(name for name in os.listdir(ckpt_dir)
                        if name.endswith(".npz"))[0]
        flip_payload_byte(os.path.join(ckpt_dir, oldest))
        scan = IntegrityScrubber(str(tmp_path)).scan(
            write_report=False)
        assert [f.kind for f in scan.findings] == ["checkpoint"]
        report = IntegrityScrubber(str(tmp_path)).repair()
        assert report.repaired
        assert "sidelined" in report.findings[0].repair
        assert os.path.exists(os.path.join(ckpt_dir, "quarantine",
                                           oldest))
        assert IntegrityScrubber(str(tmp_path)).scan(
            write_report=False).ok


# ----------------------------------------------------------------------
# Cluster-level scrub: quarantine gating + escalating repair
# ----------------------------------------------------------------------
class TestClusterScrub:
    def build(self, graph, rng, root, batches=7):
        from tests.serving.test_replication import build_cluster

        cluster = build_cluster(graph, root, replicas=2)
        for _ in range(batches):
            cluster.submit(make_random_batch(graph, rng, 6, 6))
            cluster.replicate()
        assert cluster.sync()
        return cluster

    def test_clean_cluster_scrubs_clean(self, graph, rng, tmp_path):
        cluster = self.build(graph, rng, tmp_path)
        reports = cluster.scrub()
        assert set(reports) == {"writer", "r0", "r1"}
        assert all(report.ok for report in reports.values())
        assert cluster.integrity_quarantine == {}
        cluster.close()

    def test_detection_quarantines_until_repair_heals(self, graph, rng,
                                                      tmp_path):
        cluster = self.build(graph, rng, tmp_path)
        replica = cluster.replicas["r0"]
        ckpt_dir = os.path.join(replica.directory, "checkpoints")
        victim = sorted(name for name in os.listdir(ckpt_dir)
                        if name.endswith(".npz"))[0]
        flip_payload_byte(os.path.join(ckpt_dir, victim))
        # Scan-only: the damaged replica is pulled from routing.
        reports = cluster.scrub(repair=False)
        assert not reports["r0"].ok
        assert "r0" in cluster.integrity_quarantine
        assert cluster.status()["replicas"]["r0"]["quarantined"]
        # Repair (tier 1, standalone): sideline + clear quarantine.
        reports = cluster.scrub(repair=True)
        assert reports["r0"].repaired
        assert cluster.integrity_quarantine == {}
        cluster.close()

    def test_mirror_damage_above_checkpoint_rebuilds_replica(
            self, graph, rng, tmp_path):
        cluster = self.build(graph, rng, tmp_path)
        replica = cluster.replicas["r0"]
        tail = sorted(
            name for name in os.listdir(
                os.path.join(replica.directory, "wal"))
            if name.endswith(".jsonl")
        )[-1]
        flip_payload_byte(os.path.join(replica.directory, "wal", tail))
        with scoped_registry() as registry:
            reports = cluster.scrub(repair=True)
            assert registry.counter(
                "replication.replicas_rebuilt").value == 1
        assert reports["r0"].repaired
        assert any("rebuilt from writer" in f.repair
                   for f in reports["r0"].findings)
        assert cluster.integrity_quarantine == {}
        # The rebuilt replica is a different object, fully caught up
        # and bit-for-bit with the writer.
        rebuilt = cluster.replicas["r0"]
        assert rebuilt is not replica
        assert cluster.max_lag() == 0
        assert np.array_equal(rebuilt.approximate_values,
                              cluster.writer.approximate_values)
        # And its durable state is clean.
        assert IntegrityScrubber(
            rebuilt.directory, store_root=rebuilt.store_root
        ).scan(write_report=False).ok
        cluster.close()
