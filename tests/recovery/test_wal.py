"""Tests for the write-ahead log: round trips, torn tails, CRC, GC."""

import json
import os

import numpy as np
import pytest

from repro.graph.mutation import MutationBatch
from repro.recovery.wal import (
    WALCorruptionError,
    WriteAheadLog,
    batch_to_payload,
    payload_to_batch,
)
from repro.testing.faults import InjectedCrash, scoped_failpoints


def make_batches(count, seed=0):
    rng = np.random.default_rng(seed)
    batches = []
    for _ in range(count):
        adds = [(int(rng.integers(0, 20)), int(rng.integers(0, 20)))
                for _ in range(int(rng.integers(1, 6)))]
        adds = [(u, v) for u, v in adds if u != v]
        weights = (rng.random(len(adds)) + 0.5).tolist()
        batches.append(MutationBatch.from_edges(
            additions=adds, add_weights=weights,
            grow_to=25 if rng.random() < 0.2 else None,
        ))
    return batches


def batches_equal(a: MutationBatch, b: MutationBatch) -> bool:
    return (
        np.array_equal(a.add_src, b.add_src)
        and np.array_equal(a.add_dst, b.add_dst)
        and np.array_equal(a.add_weight, b.add_weight)
        and np.array_equal(a.del_src, b.del_src)
        and np.array_equal(a.del_dst, b.del_dst)
        and a.grow_to == b.grow_to
    )


class TestRoundtrip:
    def test_payload_roundtrip_is_exact(self):
        batch = MutationBatch.from_edges(
            additions=[(0, 1), (2, 3)], deletions=[(4, 5)],
            add_weights=[0.1 + 0.2, 1.0 / 3.0],  # awkward doubles
            grow_to=9,
        )
        restored = payload_to_batch(
            json.loads(json.dumps(batch_to_payload(batch)))
        )
        assert batches_equal(batch, restored)

    def test_append_replay_roundtrip(self, tmp_path):
        batches = make_batches(10)
        with WriteAheadLog(str(tmp_path), segment_records=3) as wal:
            for index, batch in enumerate(batches):
                assert wal.append(batch) == index
        reopened = WriteAheadLog(str(tmp_path), segment_records=3)
        replayed = list(reopened.replay())
        assert [seq for seq, _ in replayed] == list(range(10))
        for (_, restored), original in zip(replayed, batches):
            assert batches_equal(restored, original)

    def test_replay_from_offset(self, tmp_path):
        batches = make_batches(7)
        with WriteAheadLog(str(tmp_path), segment_records=2) as wal:
            for batch in batches:
                wal.append(batch)
        wal = WriteAheadLog(str(tmp_path), segment_records=2)
        assert [seq for seq, _ in wal.replay(4)] == [4, 5, 6]

    def test_segments_rotate(self, tmp_path):
        with WriteAheadLog(str(tmp_path), segment_records=2) as wal:
            for batch in make_batches(5):
                wal.append(batch)
            assert len(wal.segments()) == 3
        wal = WriteAheadLog(str(tmp_path), segment_records=2)
        assert wal.next_seq == 5

    def test_append_resumes_after_reopen(self, tmp_path):
        batches = make_batches(4)
        with WriteAheadLog(str(tmp_path), segment_records=3) as wal:
            for batch in batches[:2]:
                wal.append(batch)
        with WriteAheadLog(str(tmp_path), segment_records=3) as wal:
            assert wal.append(batches[2]) == 2
            assert wal.append(batches[3]) == 3
        wal = WriteAheadLog(str(tmp_path), segment_records=3)
        assert [seq for seq, _ in wal.replay()] == [0, 1, 2, 3]


class TestTornTail:
    def test_partial_final_record_is_truncated(self, tmp_path):
        batches = make_batches(4)
        with WriteAheadLog(str(tmp_path)) as wal:
            for batch in batches:
                wal.append(batch)
            path = wal.segments()[-1]
        with open(path, "r+b") as stream:
            stream.seek(0, os.SEEK_END)
            stream.truncate(stream.tell() - 7)  # tear the last record
        wal = WriteAheadLog(str(tmp_path))
        assert wal.torn_records_truncated == 1
        assert wal.next_seq == 3
        assert [seq for seq, _ in wal.replay()] == [0, 1, 2]

    def test_torn_failpoint_end_to_end(self, tmp_path):
        batches = make_batches(3)
        with scoped_failpoints() as registry:
            registry.arm("wal.append.torn", hit=3)
            wal = WriteAheadLog(str(tmp_path))
            wal.append(batches[0])
            wal.append(batches[1])
            with pytest.raises(InjectedCrash):
                wal.append(batches[2])
            wal.close()
        reopened = WriteAheadLog(str(tmp_path))
        assert reopened.torn_records_truncated == 1
        assert reopened.next_seq == 2
        # The torn slot is reusable: the record never committed.
        assert reopened.append(batches[2]) == 2
        reopened.close()

    def test_corrupt_crc_at_tail_truncates(self, tmp_path):
        with WriteAheadLog(str(tmp_path)) as wal:
            for batch in make_batches(3):
                wal.append(batch)
            path = wal.segments()[-1]
        lines = open(path, encoding="utf-8").read().splitlines(True)
        record = json.loads(lines[-1])
        record["crc"] = (record["crc"] + 1) % 2**32
        lines[-1] = json.dumps(record) + "\n"
        open(path, "w", encoding="utf-8").writelines(lines)
        wal = WriteAheadLog(str(tmp_path))
        assert wal.next_seq == 2
        assert wal.torn_records_truncated == 1

    def test_mid_log_corruption_raises(self, tmp_path):
        with WriteAheadLog(str(tmp_path)) as wal:
            for batch in make_batches(4):
                wal.append(batch)
            path = wal.segments()[-1]
        lines = open(path, encoding="utf-8").read().splitlines(True)
        lines[1] = lines[1][:20] + "garbage" + lines[1][20:]
        open(path, "w", encoding="utf-8").writelines(lines)
        with pytest.raises(WALCorruptionError, match="mid-segment"):
            WriteAheadLog(str(tmp_path))

    def test_sequence_gap_between_segments_raises(self, tmp_path):
        with WriteAheadLog(str(tmp_path), segment_records=2) as wal:
            for batch in make_batches(6):
                wal.append(batch)
            middle = wal.segments()[1]
        os.remove(middle)
        with pytest.raises(WALCorruptionError, match="expected"):
            WriteAheadLog(str(tmp_path), segment_records=2)


class TestGC:
    def test_gc_removes_covered_segments(self, tmp_path):
        with WriteAheadLog(str(tmp_path), segment_records=2) as wal:
            for batch in make_batches(6):
                wal.append(batch)
        wal = WriteAheadLog(str(tmp_path), segment_records=2)
        assert wal.gc(4) == 2
        assert [seq for seq, _ in wal.replay()] == [4, 5]
        assert wal.next_seq == 6

    def test_gc_keeps_partially_covered_segment(self, tmp_path):
        with WriteAheadLog(str(tmp_path), segment_records=4) as wal:
            for batch in make_batches(6):
                wal.append(batch)
        wal = WriteAheadLog(str(tmp_path), segment_records=4)
        assert wal.gc(3) == 0  # records 0-3 share a segment with... 0-3
        assert wal.gc(4) == 1
        assert wal.next_seq == 6

    def test_lost_record_failpoint_loses_nothing_durable(self, tmp_path):
        batches = make_batches(2)
        with scoped_failpoints() as registry:
            registry.arm("wal.append", hit=2)
            wal = WriteAheadLog(str(tmp_path))
            wal.append(batches[0])
            with pytest.raises(InjectedCrash):
                wal.append(batches[1])
            wal.close()
        wal = WriteAheadLog(str(tmp_path))
        assert wal.next_seq == 1  # the crashed append never committed
