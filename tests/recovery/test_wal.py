"""Tests for the write-ahead log: round trips, torn tails, CRC, GC."""

import json
import os

import numpy as np
import pytest

from repro.graph.mutation import MutationBatch
from repro.recovery.wal import (
    WALCorruptionError,
    WriteAheadLog,
    batch_to_payload,
    payload_to_batch,
)
from repro.testing.faults import InjectedCrash, scoped_failpoints


def make_batches(count, seed=0):
    rng = np.random.default_rng(seed)
    batches = []
    for _ in range(count):
        adds = [(int(rng.integers(0, 20)), int(rng.integers(0, 20)))
                for _ in range(int(rng.integers(1, 6)))]
        adds = [(u, v) for u, v in adds if u != v]
        weights = (rng.random(len(adds)) + 0.5).tolist()
        batches.append(MutationBatch.from_edges(
            additions=adds, add_weights=weights,
            grow_to=25 if rng.random() < 0.2 else None,
        ))
    return batches


def batches_equal(a: MutationBatch, b: MutationBatch) -> bool:
    return (
        np.array_equal(a.add_src, b.add_src)
        and np.array_equal(a.add_dst, b.add_dst)
        and np.array_equal(a.add_weight, b.add_weight)
        and np.array_equal(a.del_src, b.del_src)
        and np.array_equal(a.del_dst, b.del_dst)
        and a.grow_to == b.grow_to
    )


class TestRoundtrip:
    def test_payload_roundtrip_is_exact(self):
        batch = MutationBatch.from_edges(
            additions=[(0, 1), (2, 3)], deletions=[(4, 5)],
            add_weights=[0.1 + 0.2, 1.0 / 3.0],  # awkward doubles
            grow_to=9,
        )
        restored = payload_to_batch(
            json.loads(json.dumps(batch_to_payload(batch)))
        )
        assert batches_equal(batch, restored)

    def test_append_replay_roundtrip(self, tmp_path):
        batches = make_batches(10)
        with WriteAheadLog(str(tmp_path), segment_records=3) as wal:
            for index, batch in enumerate(batches):
                assert wal.append(batch) == index
        reopened = WriteAheadLog(str(tmp_path), segment_records=3)
        replayed = list(reopened.replay())
        assert [seq for seq, _ in replayed] == list(range(10))
        for (_, restored), original in zip(replayed, batches):
            assert batches_equal(restored, original)

    def test_replay_from_offset(self, tmp_path):
        batches = make_batches(7)
        with WriteAheadLog(str(tmp_path), segment_records=2) as wal:
            for batch in batches:
                wal.append(batch)
        wal = WriteAheadLog(str(tmp_path), segment_records=2)
        assert [seq for seq, _ in wal.replay(4)] == [4, 5, 6]

    def test_segments_rotate(self, tmp_path):
        with WriteAheadLog(str(tmp_path), segment_records=2) as wal:
            for batch in make_batches(5):
                wal.append(batch)
            assert len(wal.segments()) == 3
        wal = WriteAheadLog(str(tmp_path), segment_records=2)
        assert wal.next_seq == 5

    def test_append_resumes_after_reopen(self, tmp_path):
        batches = make_batches(4)
        with WriteAheadLog(str(tmp_path), segment_records=3) as wal:
            for batch in batches[:2]:
                wal.append(batch)
        with WriteAheadLog(str(tmp_path), segment_records=3) as wal:
            assert wal.append(batches[2]) == 2
            assert wal.append(batches[3]) == 3
        wal = WriteAheadLog(str(tmp_path), segment_records=3)
        assert [seq for seq, _ in wal.replay()] == [0, 1, 2, 3]


class TestTornTail:
    def test_partial_final_record_is_truncated(self, tmp_path):
        batches = make_batches(4)
        with WriteAheadLog(str(tmp_path)) as wal:
            for batch in batches:
                wal.append(batch)
            path = wal.segments()[-1]
        with open(path, "r+b") as stream:
            stream.seek(0, os.SEEK_END)
            stream.truncate(stream.tell() - 7)  # tear the last record
        wal = WriteAheadLog(str(tmp_path))
        assert wal.torn_records_truncated == 1
        assert wal.next_seq == 3
        assert [seq for seq, _ in wal.replay()] == [0, 1, 2]

    def test_torn_failpoint_end_to_end(self, tmp_path):
        batches = make_batches(3)
        with scoped_failpoints() as registry:
            registry.arm("wal.append.torn", hit=3)
            wal = WriteAheadLog(str(tmp_path))
            wal.append(batches[0])
            wal.append(batches[1])
            with pytest.raises(InjectedCrash):
                wal.append(batches[2])
            wal.close()
        reopened = WriteAheadLog(str(tmp_path))
        assert reopened.torn_records_truncated == 1
        assert reopened.next_seq == 2
        # The torn slot is reusable: the record never committed.
        assert reopened.append(batches[2]) == 2
        reopened.close()

    def test_corrupt_crc_at_tail_truncates(self, tmp_path):
        with WriteAheadLog(str(tmp_path)) as wal:
            for batch in make_batches(3):
                wal.append(batch)
            path = wal.segments()[-1]
        lines = open(path, encoding="utf-8").read().splitlines(True)
        record = json.loads(lines[-1])
        record["crc"] = (record["crc"] + 1) % 2**32
        lines[-1] = json.dumps(record) + "\n"
        open(path, "w", encoding="utf-8").writelines(lines)
        wal = WriteAheadLog(str(tmp_path))
        assert wal.next_seq == 2
        assert wal.torn_records_truncated == 1

    def test_mid_log_corruption_raises(self, tmp_path):
        with WriteAheadLog(str(tmp_path)) as wal:
            for batch in make_batches(4):
                wal.append(batch)
            path = wal.segments()[-1]
        lines = open(path, encoding="utf-8").read().splitlines(True)
        lines[1] = lines[1][:20] + "garbage" + lines[1][20:]
        open(path, "w", encoding="utf-8").writelines(lines)
        with pytest.raises(WALCorruptionError, match="mid-segment"):
            WriteAheadLog(str(tmp_path))

    def test_sequence_gap_between_segments_raises(self, tmp_path):
        with WriteAheadLog(str(tmp_path), segment_records=2) as wal:
            for batch in make_batches(6):
                wal.append(batch)
            middle = wal.segments()[1]
        os.remove(middle)
        with pytest.raises(WALCorruptionError, match="expected"):
            WriteAheadLog(str(tmp_path), segment_records=2)


class TestGC:
    def test_gc_removes_covered_segments(self, tmp_path):
        with WriteAheadLog(str(tmp_path), segment_records=2) as wal:
            for batch in make_batches(6):
                wal.append(batch)
        wal = WriteAheadLog(str(tmp_path), segment_records=2)
        assert wal.gc(4) == 2
        assert [seq for seq, _ in wal.replay()] == [4, 5]
        assert wal.next_seq == 6

    def test_gc_keeps_partially_covered_segment(self, tmp_path):
        with WriteAheadLog(str(tmp_path), segment_records=4) as wal:
            for batch in make_batches(6):
                wal.append(batch)
        wal = WriteAheadLog(str(tmp_path), segment_records=4)
        assert wal.gc(3) == 0  # records 0-3 share a segment with... 0-3
        assert wal.gc(4) == 1
        assert wal.next_seq == 6

    def test_lost_record_failpoint_loses_nothing_durable(self, tmp_path):
        batches = make_batches(2)
        with scoped_failpoints() as registry:
            registry.arm("wal.append", hit=2)
            wal = WriteAheadLog(str(tmp_path))
            wal.append(batches[0])
            with pytest.raises(InjectedCrash):
                wal.append(batches[1])
            wal.close()
        wal = WriteAheadLog(str(tmp_path))
        assert wal.next_seq == 1  # the crashed append never committed


class TestSealedSegments:
    def test_full_segments_are_sealed_open_tail_is_not(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), segment_records=2)
        for batch in make_batches(5):
            wal.append(batch)
        sealed = wal.sealed_segments()
        # Two full segments; the 1-record tail is still growing.
        assert [(s.first_seq, s.end_seq) for s in sealed] == [
            (0, 2), (2, 4)]
        assert all(os.path.exists(s.path) for s in sealed)
        # A sealed segment's raw lines decode to its exact records.
        assert [json.loads(line)["seq"] for line in sealed[0].lines()
                ] == [0, 1]
        wal.close()

    def test_seal_active_makes_the_tail_shippable(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), segment_records=4)
        batches = make_batches(3)
        for batch in batches:
            wal.append(batch)
        assert wal.sealed_segments() == []
        assert wal.seal_active() is True
        assert wal.seal_active() is False  # idempotent no-op
        (tail,) = wal.sealed_segments()
        assert (tail.first_seq, tail.end_seq) == (0, 3)
        # The next append rolls a fresh segment at the frozen boundary.
        assert wal.append(make_batches(1, seed=9)[0]) == 3
        assert len(wal.segments()) == 2
        wal.close()

    def test_seal_active_on_empty_log_is_a_noop(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        assert wal.seal_active() is False
        wal.close()


class TestFastForward:
    def test_positions_an_empty_log_for_checkpoint_adoption(
            self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), segment_records=2)
        wal.fast_forward(6)
        assert wal.next_seq == 6
        # Appends resume at the adopted position.
        assert wal.append(make_batches(1)[0]) == 6
        wal.close()
        reopened = WriteAheadLog(str(tmp_path), segment_records=2)
        assert reopened.next_seq == 7
        reopened.close()

    def test_requires_an_empty_log(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(make_batches(1)[0])
        with pytest.raises(ValueError, match="empty"):
            wal.fast_forward(5)
        wal.close()

    def test_refuses_to_rewind(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.fast_forward(4)
        with pytest.raises(ValueError, match="backwards"):
            wal.fast_forward(2)
        wal.close()
