"""The acceptance gate: crash anywhere, recover bit-for-bit.

For every registered failpoint site, a server killed mid-stream and
recovered from checkpoint + WAL tail must end the workload holding
exactly the values an uninterrupted server holds (``tolerance=0.0``
through the PR-1 oracle).
"""

from repro.testing.crash import (
    crash_recovery_equivalence,
    deterministic_site_sweep,
    resilient_site_sweep,
    run_crash_fuzz,
    run_plant_fault,
    storage_site_sweep,
)
from repro.testing.faults import DURABLE_SITES, RESILIENCE_SITES
from repro.testing.workloads import generate_workload


class TestSiteSweep:
    def test_every_durable_site_recovers_bit_for_bit(self, tmp_path):
        rounds = deterministic_site_sweep(state_root=str(tmp_path))
        assert [r.site for r in rounds] == list(DURABLE_SITES)
        for round_ in rounds:
            assert round_.ok, round_.summary()
            assert round_.crashes >= 1, (
                f"{round_.site}: the failpoint never fired, so the "
                f"round proved nothing"
            )

    def test_every_resilience_site_recovers_bit_for_bit(self, tmp_path):
        rounds = resilient_site_sweep(state_root=str(tmp_path))
        assert [r.site for r in rounds] == list(RESILIENCE_SITES)
        for round_ in rounds:
            assert round_.ok, round_.summary()
            assert round_.crashes >= 1, (
                f"{round_.site}: the failpoint never fired, so the "
                f"round proved nothing"
            )

    def test_torn_write_is_truncated_on_recovery(self, tmp_path):
        rounds = deterministic_site_sweep(state_root=str(tmp_path))
        torn = next(r for r in rounds if r.site == "wal.append.torn")
        assert torn.torn_truncated >= 1
        assert torn.ok


class TestStorageSweep:
    def test_torn_segment_write_leaves_previous_manifest_readable(
            self, tmp_path):
        rounds = storage_site_sweep(state_root=str(tmp_path))
        assert len(rounds) == 6  # one kill per segment of a generation
        for round_ in rounds:
            assert round_.crashed, (
                f"hit={round_.hit}: the failpoint never fired, so the "
                f"round proved nothing"
            )
            assert round_.debris_files >= 1, (
                f"hit={round_.hit}: no torn files on disk -- the kill "
                f"site is after the damage window"
            )
            assert round_.ok, round_.summary()


class TestSingleRound:
    def test_crash_during_recovery_recovers(self, tmp_path):
        workload = generate_workload(3, algorithms=["pagerank"],
                                     max_vertices=24, max_batches=6)
        round_ = crash_recovery_equivalence(
            workload, "recover.replay", 1, str(tmp_path / "state")
        )
        assert round_.ok, round_.summary()
        assert round_.crashes >= 2  # the refine kill plus the replay kill

    def test_unfired_failpoint_still_equivalent(self, tmp_path):
        workload = generate_workload(3, algorithms=["pagerank"],
                                     max_vertices=24, max_batches=6)
        round_ = crash_recovery_equivalence(
            workload, "engine.refine", 10_000, str(tmp_path / "state")
        )
        assert round_.ok
        assert round_.crashes == 0 and not round_.fired


class TestCampaign:
    def test_small_campaign_is_clean(self, tmp_path):
        outcome = run_crash_fuzz(seed=0, rounds=4,
                                 artifacts_dir=str(tmp_path / "artifacts"),
                                 emit=lambda _: None)
        assert outcome.ok, [r.summary() for r in outcome.rounds]
        assert outcome.artifacts == []


class TestPlantFault:
    def test_plant_a_fault_detects_live_failpoints(self):
        assert run_plant_fault(emit=lambda _: None)


class TestReplicatedSweep:
    def test_every_scenario_converges_and_fences(self, tmp_path):
        """The replicated acceptance gate (`repro fuzz --crash
        --replicated`): writer kill, replica kill, segment drop, and a
        fenced stale writer all end with every surviving replica
        bit-for-bit equal to the writer and the serial reference --
        and the planted failure provably fired."""
        from repro.testing.crash import (
            REPLICATION_SCENARIOS,
            replicated_scenario_sweep,
        )

        rounds = replicated_scenario_sweep(seed=7,
                                           state_root=str(tmp_path))
        assert [r.site for r in rounds] == list(REPLICATION_SCENARIOS)
        for round_ in rounds:
            assert round_.ok, round_.summary()
            assert round_.fired, (
                f"{round_.site}: the planted failure never fired, so "
                f"the round proved nothing"
            )
