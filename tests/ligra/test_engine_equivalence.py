"""The BSP-equivalence contract between the two baseline engines.

The delta engine (GB-Reset) must produce the same per-iteration values
as full synchronous recomputation (Ligra) for every algorithm class:
simple sums, vector sums, products, apply parameters, pair aggregations
and the non-decomposable min with self-dependent apply.
"""

import numpy as np
import pytest

from repro.algorithms import (
    BFS,
    BeliefPropagation,
    CoEM,
    CollaborativeFiltering,
    ConnectedComponents,
    LabelPropagation,
    PageRank,
    SSSP,
)
from repro.graph.generators import bipartite_graph, rmat
from repro.ligra.delta import DeltaEngine
from repro.ligra.engine import LigraEngine
from repro.runtime.validation import assert_same_results

ALGORITHM_CASES = [
    pytest.param(lambda: PageRank(), "rmat", 10, id="pagerank"),
    pytest.param(lambda: LabelPropagation(num_labels=4), "rmat", 10,
                 id="label_propagation"),
    pytest.param(lambda: CoEM(), "rmat", 10, id="coem"),
    pytest.param(lambda: BeliefPropagation(num_states=3), "rmat", 10,
                 id="belief_propagation"),
    pytest.param(lambda: CollaborativeFiltering(num_factors=3), "bipartite",
                 10, id="collaborative_filtering"),
    pytest.param(lambda: SSSP(source=0), "rmat", 40, id="sssp"),
    pytest.param(lambda: BFS(source=0), "rmat", 40, id="bfs"),
    pytest.param(lambda: ConnectedComponents(), "rmat", 40, id="cc"),
]


def build_graph(kind):
    if kind == "bipartite":
        return bipartite_graph(80, 40, 5, seed=7)
    return rmat(scale=8, edge_factor=6, seed=3, weighted=True)


def finite_filled(values):
    return np.where(np.isinf(values), -1.0, values)


@pytest.mark.parametrize("factory,kind,iterations", ALGORITHM_CASES)
class TestDeltaEqualsFull:
    def test_fixed_iterations(self, factory, kind, iterations):
        graph = build_graph(kind)
        full = LigraEngine(factory()).run(graph, iterations)
        delta = DeltaEngine(factory()).run(graph, iterations)
        assert_same_results(
            finite_filled(delta), finite_filled(full), tolerance=1e-7
        )

    def test_until_convergence(self, factory, kind, iterations):
        graph = build_graph(kind)
        full = LigraEngine(factory()).run(
            graph, until_convergence=True, max_iterations=80
        )
        delta = DeltaEngine(factory()).run(
            graph, until_convergence=True, max_iterations=80
        )
        assert_same_results(
            finite_filled(delta), finite_filled(full), tolerance=1e-6
        )

    def test_retract_propagate_mode(self, factory, kind, iterations):
        graph = build_graph(kind)
        full = LigraEngine(factory()).run(graph, iterations)
        algorithm = factory()
        if not algorithm.aggregation.decomposable:
            pytest.skip("RP mode applies to decomposable aggregations")
        delta = DeltaEngine(algorithm, mode="retract_propagate").run(
            graph, iterations
        )
        assert_same_results(
            finite_filled(delta), finite_filled(full), tolerance=1e-7
        )


class TestEngineBehaviours:
    def test_delta_counts_fewer_edges_when_stabilised(self):
        # SSSP stabilises fast: the frontier collapses once distances
        # settle, so selective scheduling must beat full recomputation.
        graph = rmat(scale=8, edge_factor=6, seed=3, weighted=True)
        full_engine = LigraEngine(SSSP(source=0))
        full_engine.run(graph, 40)
        delta_engine = DeltaEngine(SSSP(source=0))
        delta_engine.run(graph, 40)
        assert (
            delta_engine.metrics.edge_computations
            < full_engine.metrics.edge_computations / 2
        )

    def test_delta_stops_at_fixpoint(self):
        graph = rmat(scale=7, edge_factor=4, seed=5, weighted=True)
        engine = DeltaEngine(SSSP(source=0))
        engine.run(graph, num_iterations=500)
        # Far fewer iterations than the cap: the frontier emptied.
        assert engine.metrics.iterations < 100

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            DeltaEngine(PageRank(), mode="bogus")

    def test_ligra_runs_exactly_requested_iterations(self):
        graph = rmat(scale=6, edge_factor=4, seed=1)
        engine = LigraEngine(PageRank())
        engine.run(graph, num_iterations=7)
        assert engine.metrics.iterations == 7

    def test_empty_graph(self):
        from repro.graph.csr import CSRGraph

        graph = CSRGraph.from_edges([], num_vertices=4)
        values = DeltaEngine(PageRank()).run(graph, 3)
        assert np.allclose(values, 0.15)

    def test_step_records_exact_changes(self):
        graph = rmat(scale=6, edge_factor=4, seed=2, weighted=True)
        engine = DeltaEngine(PageRank())
        state = engine.initial_state(graph)
        record = engine.step(graph, state, record_changes=True)
        assert record is not None
        # The record's values match the state at the recorded indices.
        assert np.array_equal(state.values[record.c_idx], record.c_values)
        assert np.array_equal(state.aggregate[record.g_idx], record.g_values)


class TestDeltaStateMechanics:
    def test_copy_is_independent(self):
        graph = rmat(scale=6, edge_factor=4, seed=7)
        engine = DeltaEngine(PageRank())
        state = engine.initial_state(graph)
        engine.step(graph, state)
        clone = state.copy()
        engine.step(graph, state)
        assert clone.iteration == state.iteration - 1
        assert not np.array_equal(clone.values, state.values)

    def test_empty_frontier_step_is_stable(self):
        graph = rmat(scale=6, edge_factor=4, seed=8, weighted=True)
        engine = DeltaEngine(SSSP(source=0))
        state = engine.initial_state(graph)
        for _ in range(200):
            engine.step(graph, state)
            if state.iteration > 1 and state.frontier.size == 0:
                break
        settled = state.values.copy()
        engine.step(graph, state)
        assert np.array_equal(
            np.where(np.isinf(state.values), -1, state.values),
            np.where(np.isinf(settled), -1, settled),
        )
