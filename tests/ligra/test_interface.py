"""Unit tests for edge_map / vertex_map / pull_edges."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.ligra.frontier import VertexSubset
from repro.ligra.interface import edge_map, edge_map_all, pull_edges, vertex_map
from repro.runtime.metrics import EngineMetrics


@pytest.fixture
def graph():
    return CSRGraph.from_edges(
        [(0, 1), (0, 2), (1, 2), (2, 3), (3, 0)], num_vertices=4
    )


class TestEdgeMap:
    def test_gathers_frontier_out_edges(self, graph):
        frontier = VertexSubset.from_ids(4, [0, 2])
        src, dst, _ = edge_map(graph, frontier)
        assert sorted(zip(src.tolist(), dst.tolist())) == [
            (0, 1), (0, 2), (2, 3),
        ]

    def test_counts_edges(self, graph):
        metrics = EngineMetrics()
        edge_map(graph, VertexSubset.from_ids(4, [0]), metrics=metrics)
        assert metrics.edge_computations == 2

    def test_kernel_invoked(self, graph):
        seen = []
        edge_map(
            graph, VertexSubset.from_ids(4, [3]),
            kernel=lambda s, d, w: seen.append((s.tolist(), d.tolist())),
        )
        assert seen == [([3], [0])]

    def test_edge_map_all(self, graph):
        metrics = EngineMetrics()
        src, dst, _ = edge_map_all(graph, metrics=metrics)
        assert src.size == 5
        assert metrics.edge_computations == 5


class TestPullEdges:
    def test_gathers_in_edges(self, graph):
        metrics = EngineMetrics()
        src, dst, _ = pull_edges(graph, np.array([2]), metrics=metrics)
        assert sorted(src.tolist()) == [0, 1]
        assert dst.tolist() == [2, 2]
        assert metrics.edge_computations == 2


class TestVertexMap:
    def test_returns_flagged_subset(self, graph):
        frontier = VertexSubset.from_ids(4, [0, 1, 2])
        result = vertex_map(frontier, lambda ids: ids % 2 == 0)
        assert result.ids.tolist() == [0, 2]

    def test_counts_vertices(self, graph):
        metrics = EngineMetrics()
        vertex_map(VertexSubset.from_ids(4, [0, 1]),
                   lambda ids: np.ones(ids.size, dtype=bool),
                   metrics=metrics)
        assert metrics.vertex_computations == 2

    def test_shape_mismatch_rejected(self, graph):
        with pytest.raises(ValueError):
            vertex_map(VertexSubset.from_ids(4, [0, 1]),
                       lambda ids: np.ones(1, dtype=bool))
