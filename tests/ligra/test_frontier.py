"""Unit tests for VertexSubset."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.ligra.frontier import VertexSubset


class TestConstruction:
    def test_from_ids_dedups_and_sorts(self):
        subset = VertexSubset.from_ids(10, [5, 2, 5, 7])
        assert subset.ids.tolist() == [2, 5, 7]
        assert len(subset) == 3

    def test_from_sorted_ids_trusts_input(self):
        subset = VertexSubset.from_sorted_ids(10, np.array([2, 5, 7]))
        assert subset.ids.tolist() == [2, 5, 7]
        assert subset.mask.tolist() == [
            False, False, True, False, False, True, False, True, False,
            False,
        ]
        assert len(subset) == 3

    def test_from_mask(self):
        mask = np.zeros(6, dtype=bool)
        mask[[1, 4]] = True
        subset = VertexSubset.from_mask(mask)
        assert subset.ids.tolist() == [1, 4]
        assert subset.num_vertices == 6

    def test_empty_and_full(self):
        assert len(VertexSubset.empty(5)) == 0
        assert not VertexSubset.empty(5)
        assert len(VertexSubset.full(5)) == 5

    def test_requires_exactly_one_source(self):
        with pytest.raises(ValueError):
            VertexSubset(5)
        with pytest.raises(ValueError):
            VertexSubset(5, ids=np.array([1]), mask=np.ones(5, dtype=bool))

    def test_out_of_range_ids(self):
        with pytest.raises(ValueError):
            VertexSubset.from_ids(3, [5])

    def test_mask_size_mismatch(self):
        with pytest.raises(ValueError):
            VertexSubset(3, mask=np.ones(5, dtype=bool))


class TestViews:
    def test_mask_from_ids(self):
        subset = VertexSubset.from_ids(4, [0, 3])
        assert subset.mask.tolist() == [True, False, False, True]

    def test_ids_from_mask(self):
        subset = VertexSubset.from_mask(np.array([False, True, True]))
        assert subset.ids.tolist() == [1, 2]

    def test_contains(self):
        subset = VertexSubset.from_ids(5, [2])
        assert 2 in subset
        assert 3 not in subset


class TestSetAlgebra:
    def test_union(self):
        a = VertexSubset.from_ids(6, [0, 1])
        b = VertexSubset.from_ids(6, [1, 5])
        assert a.union(b).ids.tolist() == [0, 1, 5]

    def test_intersect(self):
        a = VertexSubset.from_ids(6, [0, 1, 3])
        b = VertexSubset.from_ids(6, [1, 3, 5])
        assert a.intersect(b).ids.tolist() == [1, 3]

    def test_difference(self):
        a = VertexSubset.from_ids(6, [0, 1, 3])
        b = VertexSubset.from_ids(6, [1])
        assert a.difference(b).ids.tolist() == [0, 3]

    def test_universe_mismatch(self):
        with pytest.raises(ValueError):
            VertexSubset.from_ids(4, [0]).union(VertexSubset.from_ids(5, [0]))


class TestDensityHeuristic:
    def test_out_edge_count(self):
        graph = CSRGraph.from_edges([(0, 1), (0, 2), (1, 2)],
                                    num_vertices=3)
        subset = VertexSubset.from_ids(3, [0])
        assert subset.out_edge_count(graph) == 2

    def test_small_frontier_is_sparse(self):
        graph = CSRGraph.from_edges(
            [(i, (i + 1) % 50) for i in range(50)], num_vertices=50
        )
        assert not VertexSubset.from_ids(50, [0]).is_dense_preferred(graph)

    def test_large_frontier_is_dense(self):
        graph = CSRGraph.from_edges(
            [(i, (i + 1) % 50) for i in range(50)], num_vertices=50
        )
        assert VertexSubset.full(50).is_dense_preferred(graph)

    def test_empty_graph_never_dense(self):
        graph = CSRGraph.from_edges([], num_vertices=5)
        assert not VertexSubset.full(5).is_dense_preferred(graph)
