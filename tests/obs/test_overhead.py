"""The zero-cost-when-off guarantee, measured.

The instrumentation promises that leaving tracing disabled costs less
than 5% of engine runtime.  Timing two full engine runs against each
other is hopelessly flaky on shared CI hardware, so the bound is
computed from stable quantities instead:

1. microbenchmark the disabled per-span cost (a ``trace.span`` call
   through the null tracer, entered and exited);
2. count how many spans a real streaming run actually opens, by
   replaying the same workload under a recording tracer;
3. assert  ``spans_per_run x per_span_cost < 5% x untraced wall time``.

Each quantity is measured as a best-of-N minimum, which is robust to
scheduler noise in a way a single A/B comparison is not.
"""

import time

import numpy as np

from repro import GraphBoltEngine, MutationBatch, PageRank, rmat
from repro.obs import trace
from repro.obs.trace import Tracer

SPAN_SAMPLES = 50_000


def disabled_span_cost():
    """Best-of-3 per-span cost of the null path, in seconds."""
    assert not trace.enabled()

    def once():
        start = time.perf_counter()
        for index in range(SPAN_SAMPLES):
            with trace.span("iteration", index=index):
                pass
        return (time.perf_counter() - start) / SPAN_SAMPLES

    return min(once() for _ in range(3))


def run_workload():
    graph = rmat(scale=8, edge_factor=6, seed=1)
    engine = GraphBoltEngine(PageRank(), num_iterations=8)
    engine.run(graph)
    rng = np.random.default_rng(5)
    for _ in range(4):
        additions = [
            (int(rng.integers(0, graph.num_vertices)),
             int(rng.integers(0, graph.num_vertices)))
            for _ in range(50)
        ]
        engine.apply_mutations(MutationBatch.from_edges(additions=additions))


def test_disabled_tracing_costs_under_five_percent():
    per_span = disabled_span_cost()

    # How many spans does this workload actually open?
    tracer = Tracer()
    with trace.activated(tracer):
        run_workload()
    spans_per_run = len(tracer.events())
    assert spans_per_run > 0

    # Untraced wall time, best of 3.
    assert not trace.enabled()
    times = []
    for _ in range(3):
        start = time.perf_counter()
        run_workload()
        times.append(time.perf_counter() - start)
    wall = min(times)

    overhead = spans_per_run * per_span
    assert overhead < 0.05 * wall, (
        f"disabled tracing would cost {overhead * 1e3:.3f}ms over "
        f"{spans_per_run} spans against a {wall * 1e3:.1f}ms run "
        f"({overhead / wall:.1%} > 5%)"
    )
