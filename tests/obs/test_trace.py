"""Unit tests for the span tracer and the JSONL journal sink."""

import json

import pytest

from repro.obs import JsonlJournal, read_journal
from repro.obs import trace
from repro.obs.trace import NULL_TRACER, Tracer


class FakeClock:
    """Deterministic clock: each call advances by ``step`` seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestTracer:
    def test_nesting_records_parent_links(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("batch", index=0):
            with tracer.span("refine"):
                with tracer.span("iteration", index=1):
                    pass
            with tracer.span("forward"):
                pass
        events = tracer.events()
        by_name = {event["name"]: event for event in events}
        batch = by_name["batch"]
        assert batch["parent"] is None
        assert by_name["refine"]["parent"] == batch["id"]
        assert by_name["forward"]["parent"] == batch["id"]
        assert by_name["iteration"]["parent"] == by_name["refine"]["id"]
        # Post-order: children land before their parents.
        names = [event["name"] for event in events]
        assert names == ["iteration", "refine", "forward", "batch"]

    def test_sequential_ids_are_control_flow_only(self):
        def run(tracer):
            with tracer.span("a"):
                with tracer.span("b"):
                    pass
            with tracer.span("c"):
                pass
            return [(e["id"], e["parent"], e["name"])
                    for e in tracer.events()]

        first = run(Tracer(clock=FakeClock(step=1.0)))
        second = run(Tracer(clock=FakeClock(step=0.001)))
        assert first == second  # ids never depend on timing

    def test_tags_at_open_and_mid_span(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("refine", horizon=7) as span:
            span.tag(mode="dense", touched=12)
        (event,) = tracer.events()
        assert event["tags"] == {"horizon": 7, "mode": "dense",
                                 "touched": 12}

    def test_duration_from_injected_clock(self):
        tracer = Tracer(clock=FakeClock(step=1.0))
        with tracer.span("work"):
            pass
        (event,) = tracer.events()
        assert event["duration"] == pytest.approx(1.0)

    def test_exception_tags_error_and_propagates(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("batch"):
                raise ValueError("boom")
        (event,) = tracer.events()
        assert event["tags"]["error"] == "ValueError"
        assert tracer._stack == []  # stack unwound despite the raise

    def test_ring_buffer_bounds_memory(self):
        tracer = Tracer(capacity=4, clock=FakeClock())
        for index in range(10):
            with tracer.span("span", index=index):
                pass
        events = tracer.events()
        assert len(events) == 4
        assert [e["tags"]["index"] for e in events] == [6, 7, 8, 9]

    def test_overflow_counts_dropped_spans(self):
        from repro.obs.registry import scoped_registry

        with scoped_registry() as registry:
            tracer = Tracer(capacity=4, clock=FakeClock())
            for index in range(10):
                with tracer.span("span", index=index):
                    pass
            # 10 spans through a 4-slot ring: 6 evictions, none silent.
            assert tracer.dropped == 6
            assert registry.counter("trace.dropped_spans").value == 6

    def test_no_drops_under_capacity(self):
        from repro.obs.registry import scoped_registry

        with scoped_registry() as registry:
            tracer = Tracer(capacity=8, clock=FakeClock())
            for _ in range(8):
                with tracer.span("span"):
                    pass
            assert tracer.dropped == 0
            assert registry.counter("trace.dropped_spans").value == 0

    def test_mark_and_slowest_since(self):
        tracer = Tracer(clock=FakeClock(step=1.0))
        with tracer.span("before"):
            pass
        mark = tracer.mark()
        with tracer.span("apply"):       # duration 3 (outer span)
            with tracer.span("inner"):   # duration 1
                pass
        slowest = tracer.slowest_since(mark)
        assert slowest["name"] == "apply"
        assert slowest["id"] >= mark
        # Nothing after the tail mark.
        assert tracer.slowest_since(tracer.mark()) is None

    def test_null_tracer_mark_is_free(self):
        assert NULL_TRACER.mark() == 0
        assert NULL_TRACER.slowest_since(0) is None
        assert NULL_TRACER.dropped == 0

    def test_sink_sees_every_span_past_capacity(self):
        class ListSink:
            def __init__(self):
                self.records = []

            def write(self, record):
                self.records.append(record)

        sink = ListSink()
        tracer = Tracer(capacity=2, sink=sink, clock=FakeClock())
        for _ in range(5):
            with tracer.span("span"):
                pass
        assert len(sink.records) == 5

    def test_clear(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            pass
        tracer.clear()
        assert tracer.events() == []


class TestModuleDispatch:
    def test_default_is_null_tracer(self):
        assert trace.get_tracer() is NULL_TRACER
        assert not trace.enabled()

    def test_null_span_is_inert(self):
        span = trace.span("anything", key="value")
        with span as handle:
            handle.tag(more="tags")  # must not raise
        assert NULL_TRACER.events() == []

    def test_activated_installs_and_restores(self):
        tracer = Tracer(clock=FakeClock())
        with trace.activated(tracer):
            assert trace.enabled()
            assert trace.get_tracer() is tracer
            with trace.span("inside"):
                pass
        assert trace.get_tracer() is NULL_TRACER
        assert [e["name"] for e in tracer.events()] == ["inside"]

    def test_activated_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with trace.activated(Tracer(clock=FakeClock())):
                raise RuntimeError("boom")
        assert trace.get_tracer() is NULL_TRACER

    def test_install_none_means_disable(self):
        previous = trace.install(None)
        try:
            assert trace.get_tracer() is NULL_TRACER
        finally:
            trace.install(previous)


class TestJournal:
    def test_roundtrip_and_filter(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JsonlJournal.open(str(path)) as journal:
            journal.write({"type": "run", "engine": "graphbolt"})
            journal.write({"type": "batch", "index": 0})
            journal.write({"type": "batch", "index": 1})
        assert journal.records_written == 3
        assert len(read_journal(str(path))) == 3
        batches = read_journal(str(path), record_type="batch")
        assert [record["index"] for record in batches] == [0, 1]

    def test_append_mode(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JsonlJournal.open(str(path)) as journal:
            journal.write({"type": "run"})
        with JsonlJournal.open(str(path), append=True) as journal:
            journal.write({"type": "batch"})
        assert len(read_journal(str(path))) == 2

    def test_numpy_scalars_serialise(self, tmp_path):
        numpy = pytest.importorskip("numpy")
        path = tmp_path / "journal.jsonl"
        with JsonlJournal.open(str(path)) as journal:
            journal.write({"type": "batch",
                           "value": numpy.float64(0.5),
                           "count": numpy.int64(3)})
        (record,) = read_journal(str(path))
        assert record["value"] == 0.5
        assert record["count"] == 3

    def test_tracer_sink_writes_valid_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlJournal.open(str(path)) as journal:
            tracer = Tracer(sink=journal, clock=FakeClock())
            with tracer.span("batch", index=0):
                with tracer.span("refine"):
                    pass
        lines = path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["name"] for r in records] == ["refine", "batch"]
        assert all(r["type"] == "span" for r in records)
