"""Unit tests for trace-tree reconstruction and text rendering."""

from repro.obs.render import build_tree, format_trace, phase_breakdown


def span(id, parent, name, start, duration, **tags):
    return {"type": "span", "id": id, "parent": parent, "name": name,
            "start": start, "duration": duration, "tags": tags}


def batch_events():
    """One batch with two refine iterations and a forward phase."""
    return [
        span(1, 0, "adjust_structure", 0.0, 0.1),
        span(3, 2, "iteration", 0.1, 0.2, index=1),
        span(4, 2, "iteration", 0.3, 0.3, index=2),
        span(2, 0, "refine", 0.1, 0.5),
        span(5, 0, "forward", 0.6, 0.4),
        span(0, None, "batch", 0.0, 1.0, index=0, mutations=50),
    ]


class TestBuildTree:
    def test_reconstructs_forest(self):
        (root,) = build_tree(batch_events())
        assert root["name"] == "batch"
        assert [child["name"] for child in root["children"]] == [
            "adjust_structure", "refine", "forward",
        ]
        refine = root["children"][1]
        assert [c["tags"]["index"] for c in refine["children"]] == [1, 2]

    def test_orphans_become_roots(self):
        # Parent evicted from the ring buffer: the child still renders.
        events = [span(7, 99, "refine", 0.0, 0.5)]
        (root,) = build_tree(events)
        assert root["name"] == "refine"

    def test_non_span_records_ignored(self):
        events = [{"type": "run", "engine": "graphbolt"}] + batch_events()
        assert len(build_tree(events)) == 1

    def test_multiple_roots_sorted_by_start(self):
        events = [
            span(1, None, "second", 1.0, 0.5),
            span(0, None, "first", 0.0, 0.5),
        ]
        roots = build_tree(events)
        assert [root["name"] for root in roots] == ["first", "second"]


class TestPhaseBreakdown:
    def test_collapses_repeated_phases(self):
        (entry,) = phase_breakdown(batch_events())
        assert entry["name"] == "batch"
        assert entry["tags"]["mutations"] == 50
        phases = {phase["name"]: phase for phase in entry["phases"]}
        assert phases["refine"]["count"] == 1
        assert phases["refine"]["seconds"] == 0.5
        assert phases["forward"]["seconds"] == 0.4
        assert phases["adjust_structure"]["seconds"] == 0.1


class TestFormatTrace:
    def test_renders_phases_with_percentages(self):
        text = format_trace(batch_events(), title="demo")
        assert "demo" in text
        assert "batch" in text
        assert "refine" in text
        assert "forward" in text
        assert "50.0%" in text  # refine is half the batch
        assert "#" in text

    def test_collapsed_iterations_show_count(self):
        text = format_trace(batch_events())
        assert "iteration  x2" in text

    def test_empty_stream(self):
        assert "(no spans recorded)" in format_trace([])

    def test_max_depth_limits_recursion(self):
        shallow = format_trace(batch_events(), max_depth=1)
        assert "iteration" not in shallow
