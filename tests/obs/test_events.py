"""Tests for the wide-event emitter (seq, tail ring, journal flow)."""

import pytest

from repro.obs.events import WideEventEmitter
from repro.obs.journal import JsonlJournal, read_journal
from repro.obs.registry import scoped_registry


class TestWideEventEmitter:
    def test_seq_is_contiguous_across_kinds(self):
        with scoped_registry():
            emitter = WideEventEmitter()
            emitter.emit("batch", index=0)
            emitter.emit("query", index=0)
            emitter.emit("batch", index=1)
            assert [e["seq"] for e in emitter.events()] == [0, 1, 2]
            assert emitter.emitted == 3

    def test_records_carry_type_kind_and_fields(self):
        with scoped_registry():
            emitter = WideEventEmitter()
            record = emitter.emit("batch", index=7, breaker_state="open")
            assert record["type"] == "wide"
            assert record["kind"] == "batch"
            assert record["index"] == 7
            assert record["breaker_state"] == "open"

    @pytest.mark.parametrize("reserved", ["type", "seq"])
    def test_emitter_owned_keys_rejected(self, reserved):
        with scoped_registry():
            emitter = WideEventEmitter()
            with pytest.raises(ValueError, match="emitter-owned"):
                emitter.emit("batch", **{reserved: 99})

    def test_tail_ring_bounds_memory_but_seq_keeps_counting(self):
        with scoped_registry():
            emitter = WideEventEmitter(capacity=4)
            for index in range(10):
                emitter.emit("batch", index=index)
            tail = emitter.events()
            assert [e["seq"] for e in tail] == [6, 7, 8, 9]
            assert emitter.emitted == 10

    def test_events_filter_by_kind_and_last(self):
        with scoped_registry():
            emitter = WideEventEmitter()
            for index in range(3):
                emitter.emit("batch", index=index)
                emitter.emit("query", index=index)
            queries = emitter.events(kind="query")
            assert [e["index"] for e in queries] == [0, 1, 2]
            assert [e["index"] for e in emitter.events(kind="batch",
                                                       last=2)] == [1, 2]

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            WideEventEmitter(capacity=0)

    def test_journal_sees_every_event_past_capacity(self, tmp_path):
        path = str(tmp_path / "wide.jsonl")
        with scoped_registry():
            with JsonlJournal.open(path) as journal:
                emitter = WideEventEmitter(journal=journal, capacity=2)
                for index in range(5):
                    emitter.emit("batch", index=index)
        records = read_journal(path, record_type="wide")
        assert [r["seq"] for r in records] == [0, 1, 2, 3, 4]

    def test_emission_volume_counted_in_registry(self):
        with scoped_registry() as registry:
            emitter = WideEventEmitter()
            for index in range(4):
                emitter.emit("batch", index=index)
            assert registry.counter("obs.wide_events").value == 4
