"""Tests for the Prometheus-text exporter and the /metrics endpoint."""

import urllib.error
import urllib.request

import pytest

from repro.obs.export import (
    MetricsHTTPServer,
    prometheus_name,
    render_prometheus,
    write_metrics,
)
from repro.obs.registry import MetricsRegistry, scoped_registry


def tiny_registry():
    registry = MetricsRegistry()
    registry.counter("serving.batches_applied").inc(3)
    registry.gauge("slo.soak-ingest-latency.fast_burn").set(2.5)
    histogram = registry.histogram("serving.ingest_seconds",
                                   bounds=(0.1, 1.0))
    histogram.observe(0.05)
    histogram.observe(0.5)
    histogram.observe(5.0)
    return registry


class TestNameSanitisation:
    @pytest.mark.parametrize("raw, expected", [
        ("serving.queue_depth", "repro_serving_queue_depth"),
        ("slo.my-slo.firing", "repro_slo_my_slo_firing"),
        ("trace.dropped_spans", "repro_trace_dropped_spans"),
        ("9lives", "repro__9lives"),
    ])
    def test_dotted_names_become_legal(self, raw, expected):
        assert prometheus_name(raw) == expected


class TestRenderPrometheus:
    def test_counter_and_gauge_lines(self):
        text = render_prometheus(tiny_registry())
        assert "# TYPE repro_serving_batches_applied counter" in text
        assert "repro_serving_batches_applied 3" in text
        assert ("# TYPE repro_slo_soak_ingest_latency_fast_burn gauge"
                in text)
        assert "repro_slo_soak_ingest_latency_fast_burn 2.5" in text

    def test_histogram_buckets_are_cumulative(self):
        lines = render_prometheus(tiny_registry()).splitlines()
        wanted = [line for line in lines
                  if line.startswith("repro_serving_ingest_seconds")]
        assert wanted == [
            'repro_serving_ingest_seconds_bucket{le="0.1"} 1',
            'repro_serving_ingest_seconds_bucket{le="1"} 2',
            'repro_serving_ingest_seconds_bucket{le="+Inf"} 3',
            "repro_serving_ingest_seconds_sum 5.55",
            "repro_serving_ingest_seconds_count 3",
        ]

    def test_every_metric_gets_help_and_type(self):
        registry = tiny_registry()
        text = render_prometheus(registry)
        for raw in registry.names():
            assert f"# HELP {prometheus_name(raw)} " in text
            assert f"# TYPE {prometheus_name(raw)} " in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_defaults_to_process_registry(self):
        with scoped_registry() as registry:
            registry.counter("obs.wide_events").inc()
            assert "repro_obs_wide_events 1" in render_prometheus()


class TestWriteMetrics:
    def test_textfile_collector_pattern(self, tmp_path):
        path = str(tmp_path / "metrics.prom")
        assert write_metrics(path, tiny_registry()) == path
        with open(path) as handle:
            text = handle.read()
        assert text.endswith("\n")
        assert "repro_serving_batches_applied 3" in text


class TestMetricsHTTPServer:
    def test_serves_live_registry_on_ephemeral_port(self):
        registry = tiny_registry()
        with MetricsHTTPServer(port=0, registry=registry) as server:
            assert server.port > 0
            with urllib.request.urlopen(server.url, timeout=5) as reply:
                assert reply.status == 200
                assert "version=0.0.4" in reply.headers["Content-Type"]
                body = reply.read().decode()
            assert "repro_serving_batches_applied 3" in body
            # Live rendering: a scrape after a bump sees the new value.
            registry.counter("serving.batches_applied").inc()
            with urllib.request.urlopen(server.url, timeout=5) as reply:
                assert "repro_serving_batches_applied 4" in (
                    reply.read().decode())

    def test_unknown_path_is_404(self):
        with MetricsHTTPServer(port=0,
                               registry=MetricsRegistry()) as server:
            url = server.url.replace("/metrics", "/nope")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(url, timeout=5)
            assert excinfo.value.code == 404
