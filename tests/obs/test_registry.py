"""Unit tests for the metrics registry and EngineMetrics ingestion."""

from dataclasses import dataclass, field

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    ingest_engine_metrics,
    scoped_registry,
    set_registry,
)
from repro.runtime.metrics import EngineMetrics


class TestCounter:
    def test_increments(self):
        counter = Counter("edges")
        counter.inc()
        counter.inc(9)
        assert counter.value == 10

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("edges").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        gauge = Gauge("frontier")
        gauge.set(0.5)
        gauge.set(0.25)
        assert gauge.value == 0.25


class TestHistogram:
    def test_bucketing(self):
        histogram = Histogram("latency", bounds=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.counts == [1, 2, 1, 1]
        assert histogram.count == 5
        assert histogram.mean == pytest.approx(5.605 / 5)

    def test_quantile_upper_bounds(self):
        histogram = Histogram("latency", bounds=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.05, 0.5):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 0.1
        assert histogram.quantile(1.0) == 1.0
        assert histogram.quantile(0.0) == 0.01

    def test_quantile_overflow_bucket_is_inf(self):
        histogram = Histogram("latency", bounds=(0.01,))
        histogram.observe(5.0)
        assert histogram.quantile(1.0) == float("inf")

    def test_empty_histogram(self):
        # An empty histogram has no quantiles: "p99 = 0.0" off a
        # histogram that never observed anything would be silently
        # wrong in the optimistic direction, so asking raises.
        histogram = Histogram("latency")
        assert histogram.mean == 0.0
        with pytest.raises(ValueError, match="empty"):
            histogram.quantile(0.9)

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(1.0, 0.5))
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(1.0, 1.0))

    def test_rejects_bad_quantile(self):
        histogram = Histogram("latency")
        histogram.observe(0.05)
        for bad_q in (1.5, -0.1, float("nan"), float("inf")):
            with pytest.raises(ValueError, match="quantile q"):
                histogram.quantile(bad_q)

    def test_quantile_accepts_integral_and_boundary_q(self):
        histogram = Histogram("latency", bounds=(0.01, 0.1, 1.0))
        histogram.observe(0.05)
        assert histogram.quantile(0) == 0.01  # int coerces
        assert histogram.quantile(1) == 0.1
        assert histogram.quantile(0.0) == 0.01
        assert histogram.quantile(1.0) == 0.1


class TestMetricsRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ValueError):
            registry.gauge("name")

    def test_to_json_groups_by_kind(self):
        registry = MetricsRegistry()
        registry.counter("edges").inc(5)
        registry.gauge("density").set(0.5)
        registry.histogram("latency").observe(0.01)
        export = registry.to_json()
        assert export["counters"] == {"edges": 5}
        assert export["gauges"] == {"density": 0.5}
        assert export["histograms"]["latency"]["count"] == 1

    def test_names_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert registry.names() == ["a", "b"]
        registry.reset()
        assert registry.names() == []


class TestProcessWideRegistry:
    def test_scoped_registry_swaps_and_restores(self):
        original = get_registry()
        with scoped_registry() as registry:
            assert get_registry() is registry
            assert registry is not original
        assert get_registry() is original

    def test_scoped_registry_restores_on_exception(self):
        original = get_registry()
        with pytest.raises(RuntimeError):
            with scoped_registry():
                raise RuntimeError("boom")
        assert get_registry() is original

    def test_set_registry_returns_previous(self):
        original = get_registry()
        mine = MetricsRegistry()
        previous = set_registry(mine)
        try:
            assert previous is original
            assert get_registry() is mine
        finally:
            set_registry(original)


class TestIngestEngineMetrics:
    def test_folds_every_field(self):
        metrics = EngineMetrics()
        metrics.count_edges(10)
        metrics.count_vertices(3)
        metrics.add_phase_time("refine", 0.5)
        registry = MetricsRegistry()
        ingest_engine_metrics(metrics, "graphbolt", registry=registry)
        export = registry.to_json()["counters"]
        assert export["graphbolt.edge_computations"] == 10
        assert export["graphbolt.vertex_computations"] == 3
        assert export["graphbolt.phase_seconds.refine"] == 0.5

    def test_new_dataclass_field_flows_through(self):
        # The registry never needs editing when EngineMetrics grows.
        @dataclass
        class Extended(EngineMetrics):
            cache_hits: int = 0

        metrics = Extended(cache_hits=7)
        registry = MetricsRegistry()
        ingest_engine_metrics(metrics, "engine", registry=registry)
        assert registry.to_json()["counters"]["engine.cache_hits"] == 7

    def test_negative_deltas_clamp_to_zero(self):
        @dataclass
        class Weird:
            wobble: int = -5
            phase_seconds: dict = field(default_factory=lambda: {"a": -1})

        registry = MetricsRegistry()
        ingest_engine_metrics(Weird(), "engine", registry=registry)
        counters = registry.to_json()["counters"]
        assert counters["engine.wobble"] == 0
        assert counters["engine.phase_seconds.a"] == 0

    def test_rejects_non_dataclass(self):
        with pytest.raises(TypeError):
            ingest_engine_metrics({"not": "a dataclass"}, "engine")
