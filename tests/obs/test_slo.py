"""Tests for the SLO engine: validation, burn-rate alerting, sinks.

The centerpiece is the determinism pin of the whole PR: a planted
latency fault starting at batch index 10 fires the fast-burn alert at
**exactly** batch index 11 -- an exact-match assertion on the alert
index, not a sleep-and-hope timing test.  The math, with budget 0.1,
windows fast=4/slow=8, burn fast=5.0/slow=2.5:

- tick 10 (first violation): fast = (1/4)/0.1 = 2.5x  -> below 5.0
- tick 11 (second):          fast = (2/4)/0.1 = 5.0x and
                             slow = (2/8)/0.1 = 2.5x  -> both at
  threshold, the alert fires.
"""

import dataclasses

import pytest

from repro.obs.journal import JsonlJournal, read_journal
from repro.obs.registry import scoped_registry
from repro.obs.slo import (
    SIGNALS,
    SLO,
    BreakerAlertSink,
    RecordingSink,
    SLOError,
    SLOEvaluator,
    lint_slo_dir,
    lint_slo_file,
    load_slo_file,
    resolve_slo_path,
    slos_dir,
)
from repro.serving import BreakerConfig, CircuitBreaker


def soak_slo(**overrides):
    """The pinned soak objective used throughout (see module docstring)."""
    kwargs = dict(
        name="soak-ingest-latency", signal="ingest_latency", op="<",
        threshold=1.0, budget=0.1, fast_window=4, slow_window=8,
        fast_burn=5.0, slow_burn=2.5, severity="page",
        runbook="overload-and-degradation",
    )
    kwargs.update(overrides)
    return SLO(**kwargs)


def run_plant(slo, plant_from=10, total=16, planted=9.9, sink=None,
              journal=None):
    """Feed good samples, then planted violations from ``plant_from``."""
    evaluator = SLOEvaluator([slo], sink=sink, journal=journal)
    for index in range(total):
        value = planted if index >= plant_from else 0.01
        evaluator.tick({"ingest_latency": value}, index=index)
    return evaluator


class TestSLOValidation:
    def test_accepts_the_soak_objective(self):
        slo = soak_slo()
        assert slo.objective == "ingest_latency < 1"
        assert slo.is_good(0.5) and not slo.is_good(1.5)

    @pytest.mark.parametrize("overrides, match", [
        ({"name": "Bad Name"}, "kebab/snake"),
        ({"name": ""}, "kebab/snake"),
        ({"signal": "vibes"}, "unknown signal"),
        ({"op": "=="}, "op must be"),
        ({"budget": 0.0}, "budget"),
        ({"budget": 1.5}, "budget"),
        ({"fast_window": 0}, "fast_window"),
        ({"fast_window": 8, "slow_window": 4}, "fast_window"),
        ({"fast_burn": 0.0}, "positive"),
        ({"severity": "shrug"}, "severity"),
    ])
    def test_rejects_bad_definitions(self, overrides, match):
        with pytest.raises(SLOError, match=match):
            soak_slo(**overrides)

    def test_duplicate_names_rejected(self):
        with pytest.raises(SLOError, match="duplicate"):
            SLOEvaluator([soak_slo(), soak_slo()])

    def test_signal_vocabulary_is_documented(self):
        for signal, description in SIGNALS.items():
            assert description, signal


class TestBurnRateAlerting:
    def test_planted_fault_fires_at_pinned_index(self):
        """THE determinism pin: plant at 10 -> page fires at 11."""
        with scoped_registry():
            sink = RecordingSink()
            run_plant(soak_slo(), plant_from=10, sink=sink)
            firing = [a for a in sink.alerts if a.state == "firing"]
            assert len(firing) == 1
            alert = firing[0]
            assert alert.index == 11
            assert alert.slo == "soak-ingest-latency"
            assert alert.severity == "page"
            assert alert.fast_burn == pytest.approx(5.0)
            assert alert.slow_burn == pytest.approx(2.5)
            assert alert.value == pytest.approx(9.9)
            assert alert.runbook == "overload-and-degradation"

    def test_clean_run_fires_nothing(self):
        with scoped_registry():
            sink = RecordingSink()
            evaluator = run_plant(soak_slo(), plant_from=99, total=32,
                                  sink=sink)
            assert sink.alerts == []
            assert evaluator.firing == []

    def test_one_batch_blip_never_pages(self):
        """The slow window exists to filter single-batch spikes."""
        with scoped_registry():
            sink = RecordingSink()
            evaluator = SLOEvaluator([soak_slo()], sink=sink)
            # Blips only after warmup: with partial windows, a burn at
            # tick 0 is 1/1 of the budget and legitimately pages.
            for index in range(24):
                value = 9.9 if index in (8, 16) else 0.01
                evaluator.tick({"ingest_latency": value}, index=index)
            assert sink.alerts == []

    def test_alert_resolves_when_fast_burn_recovers(self):
        with scoped_registry():
            sink = RecordingSink()
            evaluator = run_plant(soak_slo(), plant_from=10, total=14,
                                  sink=sink)
            assert evaluator.firing == ["soak-ingest-latency"]
            # Recovery: good samples push violations out of the fast
            # window; after 3 good ticks fast = (1/4)/0.1 = 2.5 < 5.0.
            for index in range(14, 17):
                evaluator.tick({"ingest_latency": 0.01}, index=index)
            states = [(a.state, a.index) for a in sink.alerts]
            assert states == [("firing", 11), ("resolved", 16)]
            assert evaluator.firing == []

    def test_missing_signal_leaves_windows_untouched(self):
        with scoped_registry():
            evaluator = SLOEvaluator([soak_slo()])
            for index in range(20):
                evaluator.tick({"queue_depth": 0.0}, index=index)
            (row,) = evaluator.status()
            assert row["state"] == "no-data"
            assert row["ticks"] == 0

    def test_registry_surfaces_burn_and_firing(self):
        with scoped_registry() as registry:
            run_plant(soak_slo(), plant_from=10, total=12)
            prefix = "slo.soak-ingest-latency"
            assert registry.gauge(f"{prefix}.fast_burn").value == (
                pytest.approx(5.0))
            assert registry.gauge(f"{prefix}.firing").value == 1
            assert registry.counter("slo.alerts_fired").value == 1
            assert registry.counter("slo.alerts_resolved").value == 0

    def test_alerts_are_journaled_as_first_class_records(self, tmp_path):
        path = str(tmp_path / "alerts.jsonl")
        with scoped_registry():
            with JsonlJournal.open(path) as journal:
                run_plant(soak_slo(), plant_from=10, journal=journal)
        (record,) = read_journal(path, record_type="alert")
        assert record["slo"] == "soak-ingest-latency"
        assert record["state"] == "firing"
        assert record["index"] == 11
        assert record["objective"] == "ingest_latency < 1"

    def test_status_rows_cover_every_slo(self):
        with scoped_registry():
            evaluator = SLOEvaluator([
                soak_slo(),
                soak_slo(name="queue-bound", signal="queue_depth",
                         op="<=", threshold=4.0),
            ])
            evaluator.tick({"ingest_latency": 0.1, "queue_depth": 2.0})
            rows = {row["name"]: row for row in evaluator.status()}
            assert rows["soak-ingest-latency"]["state"] == "ok"
            assert rows["queue-bound"]["last_value"] == 2.0


class TestBreakerAlertSink:
    def firing_alert(self):
        with scoped_registry():
            sink = RecordingSink()
            run_plant(soak_slo(), plant_from=10, total=12, sink=sink)
            return sink.alerts[0]

    def test_observe_only_by_default(self):
        """The pinned posture: attaching the sink never sheds load."""
        with scoped_registry() as registry:
            breaker = CircuitBreaker(BreakerConfig())
            sink = BreakerAlertSink(breaker)
            sink.notify(self.firing_alert())
            assert breaker.state == "closed"
            assert breaker.transitions == []
            assert len(sink.notified) == 1
            assert registry.counter(
                "slo.breaker_notifications").value == 1

    def test_act_true_trips_on_firing_page(self):
        with scoped_registry():
            breaker = CircuitBreaker(BreakerConfig())
            BreakerAlertSink(breaker, act=True).notify(
                self.firing_alert())
            assert breaker.state == "open"
            (transition,) = breaker.transitions
            assert transition.to_state == "open"
            assert "soak-ingest-latency" in transition.reason

    def test_act_true_ignores_tickets_and_resolves(self):
        with scoped_registry():
            breaker = CircuitBreaker(BreakerConfig())
            sink = BreakerAlertSink(breaker, act=True)
            alert = self.firing_alert()
            sink.notify(dataclasses.replace(alert, severity="ticket"))
            sink.notify(dataclasses.replace(alert, state="resolved"))
            assert breaker.state == "closed"


class TestSLOFiles:
    def test_bundled_files_load_and_lint_clean(self):
        for name in ("serving", "soak"):
            slos = load_slo_file(name)
            assert slos, name
        assert lint_slo_dir() == {}

    def test_soak_file_pins_the_ci_objective(self):
        by_name = {slo.name: slo for slo in load_slo_file("soak")}
        slo = by_name["soak-ingest-latency"]
        assert (slo.budget, slo.fast_window, slo.slow_window) == (
            0.1, 4, 8)
        assert (slo.fast_burn, slo.slow_burn) == (5.0, 2.5)
        assert slo.severity == "page"

    def test_resolve_bare_name_lands_in_slos_dir(self):
        path = resolve_slo_path("soak")
        assert path.startswith(slos_dir())
        assert path.endswith("soak.yaml")
        assert resolve_slo_path("custom/my.yaml") == "custom/my.yaml"

    def test_roundtrip_through_yaml(self, tmp_path):
        path = tmp_path / "custom.yaml"
        path.write_text(
            "schema: 1\n"
            "slos:\n"
            "  - name: my-latency\n"
            "    signal: ingest_latency\n"
            "    objective: \"< 0.75\"\n"
            "    budget: 0.2\n"
            "    windows: {fast: 3, slow: 9}\n"
            "    burn: {fast: 4.0, slow: 2.0}\n"
            "    severity: ticket\n"
            "    runbook: overload-and-degradation\n"
        )
        (slo,) = load_slo_file(str(path))
        assert slo == SLO(
            name="my-latency", signal="ingest_latency", op="<",
            threshold=0.75, budget=0.2, fast_window=3, slow_window=9,
            fast_burn=4.0, slow_burn=2.0, severity="ticket",
            runbook="overload-and-degradation",
        )

    @pytest.mark.parametrize("body, match", [
        ("schema: 99\nslos: [{name: a, signal: queue_depth, "
         "objective: '< 1'}]\n", "schema"),
        ("schema: 1\nslos: []\n", "non-empty"),
        ("schema: 1\nslos: [{name: a, signal: queue_depth}]\n",
         "objective"),
        ("schema: 1\nslos: [{name: a, signal: queue_depth, "
         "objective: 'about 5'}]\n", "must look like"),
        ("schema: 1\nslos: [{name: a, signal: queue_depth, "
         "objective: '< 1', frobnicate: 2}]\n", "unknown keys"),
        ("schema: 1\nslos: [{name: a, signal: queue_depth, "
         "objective: '< 1'}, {name: a, signal: queue_depth, "
         "objective: '< 2'}]\n", "duplicate"),
    ])
    def test_bad_files_rejected(self, tmp_path, body, match):
        path = tmp_path / "bad.yaml"
        path.write_text(body)
        with pytest.raises(SLOError, match=match):
            load_slo_file(str(path))
        assert lint_slo_file(str(path))

    def test_lint_dir_reports_dirty_files(self, tmp_path):
        (tmp_path / "good.yaml").write_text(
            "schema: 1\nslos: [{name: ok, signal: queue_depth, "
            "objective: '<= 4'}]\n")
        (tmp_path / "bad.yaml").write_text("schema: 1\nslos: []\n")
        problems = lint_slo_dir(str(tmp_path))
        assert list(problems) == [str(tmp_path / "bad.yaml")]

    def test_lint_empty_dir_is_a_problem(self, tmp_path):
        assert lint_slo_dir(str(tmp_path))
