"""End-to-end checks that the engines emit the documented span tree."""

import numpy as np

from repro import GraphBoltEngine, MutationBatch, PageRank, rmat
from repro.kickstarter.engine import KickStarterEngine
from repro.ligra.engine import LigraEngine
from repro.obs import trace
from repro.obs.registry import scoped_registry
from repro.obs.render import build_tree, phase_breakdown
from repro.obs.trace import Tracer


def mutation_batches(graph, batches, seed=3, size=20):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(batches):
        additions = [
            (int(rng.integers(0, graph.num_vertices)),
             int(rng.integers(0, graph.num_vertices)))
            for _ in range(size)
        ]
        out.append(MutationBatch.from_edges(additions=additions))
    return out


def run_graphbolt(tracer, batches=3):
    graph = rmat(scale=7, edge_factor=4, seed=1)
    with trace.activated(tracer):
        engine = GraphBoltEngine(PageRank(), num_iterations=6)
        engine.run(graph)
        for batch in mutation_batches(engine.graph, batches):
            engine.apply_mutations(batch)
    return tracer.events()


class TestGraphBoltSpans:
    def test_every_batch_has_refine_and_forward(self):
        batches = 3
        events = run_graphbolt(Tracer(), batches=batches)
        roots = build_tree(events)
        assert [root["name"] for root in roots] == (
            ["initial_run"] + ["batch"] * batches
        )
        for index, root in enumerate(roots[1:]):
            assert root["tags"]["index"] == index
            phases = [child["name"] for child in root["children"]]
            assert "adjust_structure" in phases
            assert "refine" in phases
            assert "forward" in phases

    def test_refine_iterations_tag_mode(self):
        events = run_graphbolt(Tracer())
        modes = [
            event["tags"]["mode"] for event in events
            if event["name"] == "iteration" and "mode" in event["tags"]
        ]
        assert modes  # refine loop tagged which path it took
        assert set(modes) <= {"dense", "decomposable", "reevaluate"}

    def test_span_tree_is_deterministic(self):
        def shape(events):
            return [(e["id"], e["parent"], e["name"]) for e in events]

        assert shape(run_graphbolt(Tracer())) == shape(
            run_graphbolt(Tracer())
        )

    def test_phase_breakdown_covers_batches(self):
        events = run_graphbolt(Tracer(), batches=2)
        breakdown = phase_breakdown(events)
        batch_entries = [b for b in breakdown if b["name"] == "batch"]
        assert len(batch_entries) == 2
        for entry in batch_entries:
            names = {phase["name"] for phase in entry["phases"]}
            assert {"refine", "forward"} <= names

    def test_gauges_published(self):
        with scoped_registry() as registry:
            run_graphbolt(Tracer(), batches=1)
            gauges = registry.to_json()["gauges"]
        assert "graphbolt.frontier_density" in gauges
        assert "graphbolt.history_window" in gauges
        assert gauges["graphbolt.dependency_bytes"] > 0


class TestOtherEngines:
    def test_ligra_emits_compute_iterations(self):
        graph = rmat(scale=7, edge_factor=4, seed=1)
        tracer = Tracer()
        with trace.activated(tracer):
            LigraEngine(PageRank()).run(graph, 5)
        (root,) = build_tree(tracer.events())
        assert root["name"] == "compute"
        assert root["tags"]["engine"] == "Ligra"
        assert all(c["name"] == "iteration" for c in root["children"])

    def test_kickstarter_emits_trim_and_propagate(self):
        graph = rmat(scale=7, edge_factor=4, seed=1, weighted=True)
        tracer = Tracer()
        with trace.activated(tracer):
            engine = KickStarterEngine(graph, source=0)
            for batch in mutation_batches(graph, 2, size=10):
                engine.apply_mutations(batch)
        roots = build_tree(tracer.events())
        batches = [r for r in roots if r["name"] == "batch"]
        assert len(batches) == 2
        for root in batches:
            names = [child["name"] for child in root["children"]]
            assert "trim" in names
            assert "propagate" in names
