"""Tests for the dashboard renderer: streams, gap check, replay pin."""

import pytest

from repro.obs.dash import (
    dashboard_from_journal,
    render_dashboard,
    replay_slos,
    seq_warnings,
    sparkline,
    split_journal,
)
from repro.obs.journal import JsonlJournal
from repro.obs.registry import scoped_registry
from repro.obs.slo import SLO, RecordingSink, SLOEvaluator


def soak_slo():
    return SLO(name="soak-ingest-latency", signal="ingest_latency",
               op="<", threshold=1.0, budget=0.1, fast_window=4,
               slow_window=8, fast_burn=5.0, slow_burn=2.5)


def batch_event(seq, index, ingest_seconds):
    return {
        "type": "wide", "kind": "batch", "seq": seq, "index": index,
        "seconds": ingest_seconds, "ingest_seconds": ingest_seconds,
        "breaker_state": "closed", "queue_depth": 0,
        "samples": {"ingest_latency": ingest_seconds},
    }


def query_event(seq, index, seconds, degraded=False):
    return {
        "type": "wide", "kind": "query", "seq": seq, "index": index,
        "seconds": seconds, "degraded": degraded,
    }


def health_record(seq, breaker_state="closed"):
    return {"type": "health", "event": "health", "seq": seq,
            "breaker_state": breaker_state, "queue_depth": 0,
            "staleness_batches": 0, "admission_policy": "block",
            "submitted": seq, "applied": seq, "shed": 0,
            "coalesced": 0, "quarantine_count": 0, "restores": 0}


class TestSparkline:
    def test_maps_range_onto_blocks(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_flat_series_renders_flat(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_empty_and_width(self):
        assert sparkline([]) == "(no data)"
        assert len(sparkline(list(range(100)), width=16)) == 16


class TestSplitJournal:
    def test_streams_partition_by_discriminator(self):
        records = [
            health_record(0),
            batch_event(0, 0, 0.01),
            query_event(1, 0, 0.02),
            batch_event(2, 1, 0.01),
            {"type": "alert", "slo": "x", "state": "firing"},
            {"type": "span", "name": "ingest"},
        ]
        streams = split_journal(records)
        assert len(streams["health"]) == 1
        assert len(streams["batches"]) == 2
        assert len(streams["queries"]) == 1
        assert len(streams["alerts"]) == 1
        assert len(streams["other"]) == 1
        # The merged wide stream keeps journal order for the seq check.
        assert [r["seq"] for r in streams["wide"]] == [0, 1, 2]


class TestSeqWarnings:
    def test_contiguous_streams_are_clean(self):
        streams = split_journal([
            health_record(0), batch_event(0, 0, 0.01),
            query_event(1, 0, 0.02), health_record(1),
            batch_event(2, 1, 0.01),
        ])
        assert seq_warnings(streams) == []

    def test_interleaved_kinds_share_one_sequence(self):
        """Batch and query events come from one emitter: checking the
        kinds separately would see bogus gaps; the merged stream must
        not."""
        records = [batch_event(0, 0, 0.01), query_event(1, 0, 0.02),
                   batch_event(2, 1, 0.01), query_event(3, 1, 0.02)]
        assert seq_warnings(split_journal(records)) == []

    def test_gap_detected(self):
        streams = split_journal([batch_event(0, 0, 0.01),
                                 batch_event(3, 1, 0.01)])
        (warning,) = seq_warnings(streams)
        assert "gap between seq 0 and 3" in warning
        assert "2 record(s) missing" in warning

    def test_reorder_detected(self):
        streams = split_journal([batch_event(2, 0, 0.01),
                                 batch_event(1, 1, 0.01)])
        (warning,) = seq_warnings(streams)
        assert "backwards" in warning

    def test_health_gap_detected_independently(self):
        streams = split_journal([health_record(0), health_record(2)])
        (warning,) = seq_warnings(streams)
        assert warning.startswith("health snapshots")

    def test_pre_seq_records_flagged_not_crashed(self):
        old = batch_event(0, 0, 0.01)
        del old["seq"]
        streams = split_journal([old, batch_event(1, 1, 0.01)])
        (warning,) = seq_warnings(streams)
        assert "lack a 'seq'" in warning


class TestReplayPin:
    def plant_run(self, total=16, plant_from=10):
        """A live evaluator run plus the wide events it would journal."""
        with scoped_registry():
            sink = RecordingSink()
            evaluator = SLOEvaluator([soak_slo()], sink=sink)
            events = []
            for index in range(total):
                value = 9.9 if index >= plant_from else 0.01
                evaluator.tick({"ingest_latency": value}, index=index)
                events.append(batch_event(index, index, value))
            return sink.alerts, events

    def test_replay_reproduces_live_alerts_exactly(self):
        """The replay determinism pin: wide events embed the samples
        the live evaluator consumed, so ``repro dash --from-journal``
        reproduces burn rates and alert indices bit-for-bit."""
        live_alerts, events = self.plant_run()
        with scoped_registry():
            sink = RecordingSink()
            replay_slos([soak_slo()], events, sink=sink)
        assert [(a.slo, a.state, a.index, a.fast_burn, a.slow_burn)
                for a in sink.alerts] == [
            (a.slo, a.state, a.index, a.fast_burn, a.slow_burn)
            for a in live_alerts]
        assert sink.alerts[0].index == 11  # the pinned firing index

    def test_replay_skips_sampleless_events(self):
        event = batch_event(0, 0, 9.9)
        del event["samples"]
        with scoped_registry():
            evaluator = replay_slos([soak_slo()], [event])
            assert evaluator.firing == []


class TestRenderDashboard:
    def frame(self, records, slos=None):
        with scoped_registry():
            return render_dashboard(split_journal(records), slos=slos)

    def test_panels_present(self):
        text = self.frame([health_record(0), batch_event(0, 0, 0.01),
                           query_event(1, 0, 0.02)])
        for panel in ("SLO status", "Serving", "Latency",
                      "Sequence check: ok"):
            assert panel in text

    def test_slo_panel_shows_firing_state(self):
        _, events = TestReplayPin().plant_run()
        text = self.frame(events, slos=[soak_slo()])
        assert "FIRING" in text
        assert "soak-ingest-latency" in text
        assert "fired" in text

    def test_breaker_timeline_from_health_stream(self):
        text = self.frame([health_record(0), health_record(1, "open"),
                           health_record(2, "closed")])
        assert "breaker timeline: closed@0 -> open@1 -> closed@2" in text

    def test_gap_renders_warning_panel(self):
        text = self.frame([batch_event(0, 0, 0.01),
                           batch_event(5, 1, 0.01)])
        assert "Sequence check: WARNING" in text
        assert "gap between seq 0 and 5" in text

    def test_empty_journal_renders(self):
        text = self.frame([])
        assert "0 journal record(s)" in text
        assert "(no health snapshots journaled)" in text

    def test_dashboard_from_journal_roundtrip(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with JsonlJournal.open(path) as journal:
            journal.write(health_record(0))
            journal.write(batch_event(0, 0, 0.01))
        with scoped_registry():
            text, streams = dashboard_from_journal(path)
        assert path in text
        assert len(streams["batches"]) == 1

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            dashboard_from_journal(str(tmp_path / "absent.jsonl"))


def replica_event(seq, name, lag, alive=True, rejections=0, epoch=1):
    return {
        "type": "wide", "kind": "replica", "seq": seq, "name": name,
        "alive": alive, "applied_seq": 10 - lag, "lag_batches": lag,
        "fence_epoch": epoch, "fence_rejections": rejections,
        "inbox_pending": 0, "epoch": epoch,
    }


class TestReplicationPanel:
    def test_replica_events_stay_in_the_merged_wide_stream(self):
        """Replica events share the batch/query emitter sequence: they
        must ride the merged stream or the gap check sees bogus holes."""
        records = [
            batch_event(0, 0, 0.01),
            replica_event(1, "r0", 0),
            replica_event(2, "r1", 1),
            batch_event(3, 1, 0.01),
        ]
        streams = split_journal(records)
        assert len(streams["replicas"]) == 2
        assert len(streams["batches"]) == 2
        assert [r["seq"] for r in streams["wide"]] == [0, 1, 2, 3]
        assert seq_warnings(streams) == []

    def test_panel_renders_lag_fence_and_liveness(self):
        records = [
            replica_event(0, "r0", 0),
            replica_event(1, "r1", 0),
            replica_event(2, "r0", 3, alive=False),
            replica_event(3, "r1", 0, rejections=2, epoch=2),
        ]
        with scoped_registry():
            text = render_dashboard(split_journal(records))
        assert "Replication" in text
        assert "DOWN" in text            # r0's final state
        assert "fence=e2" in text        # r1 fenced at the new epoch
        assert "rejections=2" in text
        assert "epoch=2" in text
        assert "now=3" in text           # r0's last reported lag

    def test_no_replica_events_no_panel(self):
        with scoped_registry():
            text = render_dashboard(
                split_journal([batch_event(0, 0, 0.01)]))
        assert "Replication" not in text
