"""Unit tests for dependency trees and segmented argmin."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.kickstarter.trees import (
    NO_PARENT,
    DependencyTree,
    segmented_argmin,
)


class TestSegmentedArgmin:
    def test_basic(self):
        values = np.array([3.0, 1.0, 2.0, 0.5])
        segments = np.array([0, 0, 1, 1])
        segs, idx = segmented_argmin(values, segments)
        assert segs.tolist() == [0, 1]
        assert idx.tolist() == [1, 3]

    def test_ties_break_by_position(self):
        values = np.array([1.0, 1.0])
        segments = np.array([5, 5])
        _, idx = segmented_argmin(values, segments)
        assert idx.tolist() == [0]

    def test_empty(self):
        segs, idx = segmented_argmin(np.array([]), np.array([]))
        assert segs.size == 0 and idx.size == 0

    def test_single_element_segments(self):
        values = np.array([4.0, 2.0, 9.0])
        segments = np.array([1, 3, 7])
        segs, idx = segmented_argmin(values, segments)
        assert segs.tolist() == [1, 3, 7]
        assert idx.tolist() == [0, 1, 2]


class TestDependencyTree:
    def make_tree(self):
        # 0 -> 1 -> 2, 0 -> 3; parents encode that chain.
        graph = CSRGraph.from_edges(
            [(0, 1), (1, 2), (0, 3), (3, 2)], num_vertices=4
        )
        tree = DependencyTree(4)
        tree.values[:] = [0.0, 1.0, 2.0, 1.0]
        tree.parents[:] = [NO_PARENT, 0, 1, 0]
        return graph, tree

    def test_children_of(self):
        graph, tree = self.make_tree()
        assert tree.children_of(graph, np.array([0])).tolist() == [1, 3]
        assert tree.children_of(graph, np.array([1])).tolist() == [2]
        assert tree.children_of(graph, np.array([3])).tolist() == []

    def test_children_requires_edge_and_parent(self):
        graph, tree = self.make_tree()
        # 3 -> 2 edge exists but 2's parent is 1, so 2 is not 3's child.
        assert 2 not in tree.children_of(graph, np.array([3])).tolist()

    def test_subtree_of(self):
        graph, tree = self.make_tree()
        assert tree.subtree_of(graph, np.array([1])).tolist() == [1, 2]
        assert tree.subtree_of(graph, np.array([0])).tolist() == [0, 1, 2, 3]

    def test_subtree_of_leaf(self):
        graph, tree = self.make_tree()
        assert tree.subtree_of(graph, np.array([2])).tolist() == [2]

    def test_depths(self):
        _, tree = self.make_tree()
        assert tree.depths().tolist() == [0, 1, 2, 1]

    def test_depths_detect_cycle(self):
        tree = DependencyTree(2)
        tree.values[:] = [1.0, 1.0]
        tree.parents[:] = [1, 0]
        with pytest.raises(RuntimeError, match="cycle"):
            tree.depths()

    def test_grow_to(self):
        _, tree = self.make_tree()
        tree.grow_to(6)
        assert tree.num_vertices == 6
        assert np.isinf(tree.values[4:]).all()
        assert np.all(tree.parents[4:] == NO_PARENT)
        tree.grow_to(3)  # shrinking is a no-op
        assert tree.num_vertices == 6
