"""Correctness of the KickStarter trim-and-propagate engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import SSSP
from repro.graph.csr import CSRGraph
from repro.graph.generators import cycle_graph, rmat
from repro.graph.mutation import MutationBatch
from repro.kickstarter.engine import KickStarterEngine
from repro.kickstarter.trees import NO_PARENT
from repro.ligra.engine import LigraEngine
from tests.conftest import make_random_batch


def ground_truth(graph, source, unit_weights=False):
    algo = SSSP(source=source)
    if unit_weights:
        from repro.algorithms import BFS

        algo = BFS(source=source)
    return LigraEngine(algo).run(graph, until_convergence=True,
                                 max_iterations=2000)


def assert_distances_equal(actual, expected):
    both_inf = np.isinf(actual) & np.isinf(expected)
    mask = ~both_inf
    assert np.allclose(actual[mask], expected[mask]), (
        actual[mask], expected[mask]
    )
    assert np.array_equal(np.isinf(actual), np.isinf(expected))


class TestInitialRun:
    def test_matches_bellman_ford(self):
        graph = rmat(scale=8, edge_factor=5, seed=20, weighted=True)
        engine = KickStarterEngine(graph, source=0)
        assert_distances_equal(engine.values, ground_truth(graph, 0))

    def test_invalid_source(self):
        graph = cycle_graph(3)
        with pytest.raises(ValueError):
            KickStarterEngine(graph, source=9)

    def test_dependency_tree_is_consistent(self):
        graph = rmat(scale=7, edge_factor=5, seed=21, weighted=True)
        engine = KickStarterEngine(graph, source=0)
        values, parents = engine.tree.values, engine.tree.parents
        for vertex in range(graph.num_vertices):
            parent = parents[vertex]
            if parent == NO_PARENT:
                assert vertex == 0 or np.isinf(values[vertex])
            else:
                weight = graph.edge_weight(int(parent), vertex)
                assert np.isclose(values[vertex], values[parent] + weight)
        # No cycles in the parent forest.
        engine.tree.depths()

    def test_unit_weights_mode(self):
        graph = rmat(scale=7, edge_factor=5, seed=22, weighted=True)
        engine = KickStarterEngine(graph, source=0, unit_weights=True)
        assert_distances_equal(
            engine.values, ground_truth(graph, 0, unit_weights=True)
        )


class TestMutations:
    def test_addition_shortens_path(self):
        graph = cycle_graph(6)
        engine = KickStarterEngine(graph, source=0)
        assert engine.values[5] == 5.0
        engine.apply_mutations(
            MutationBatch.from_edges(additions=[(0, 5)])
        )
        assert engine.values[5] == 1.0

    def test_deletion_of_tree_edge_recovers(self):
        graph = CSRGraph.from_edges(
            [(0, 1), (1, 2), (0, 3), (3, 2)], num_vertices=4,
            weights=[1.0, 1.0, 5.0, 5.0],
        )
        engine = KickStarterEngine(graph, source=0)
        assert engine.values[2] == 2.0
        engine.apply_mutations(MutationBatch.from_edges(deletions=[(1, 2)]))
        assert engine.values[2] == 10.0  # detour via vertex 3

    def test_deletion_of_non_tree_edge_is_cheap(self):
        graph = CSRGraph.from_edges(
            [(0, 1), (1, 2), (0, 2)], num_vertices=3,
            weights=[1.0, 1.0, 5.0],
        )
        engine = KickStarterEngine(graph, source=0)
        before = engine.metrics.snapshot()
        engine.apply_mutations(MutationBatch.from_edges(deletions=[(0, 2)]))
        delta = engine.metrics.delta_since(before)
        assert engine.values[2] == 2.0
        # No dependency edge deleted -> no trimming work.
        assert delta.phase_seconds.get("trim", 0) >= 0
        assert engine.values.tolist() == [0.0, 1.0, 2.0]

    def test_disconnection_becomes_inf(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2)], num_vertices=3)
        engine = KickStarterEngine(graph, source=0)
        engine.apply_mutations(MutationBatch.from_edges(deletions=[(0, 1)]))
        assert np.isinf(engine.values[1])
        assert np.isinf(engine.values[2])
        assert engine.values[0] == 0.0

    def test_vertex_growth(self):
        graph = cycle_graph(4)
        engine = KickStarterEngine(graph, source=0)
        engine.apply_mutations(
            MutationBatch.from_edges(additions=[(3, 4), (4, 5)], grow_to=6)
        )
        assert engine.values[4] == 4.0
        assert engine.values[5] == 5.0

    def test_stream_matches_bellman_ford(self, rng):
        graph = rmat(scale=8, edge_factor=5, seed=23, weighted=True)
        engine = KickStarterEngine(graph, source=0)
        for _ in range(8):
            engine.apply_mutations(
                make_random_batch(engine.graph, rng, 20, 20)
            )
            assert_distances_equal(
                engine.values, ground_truth(engine.graph, 0)
            )

    def test_tree_stays_consistent_across_stream(self, rng):
        graph = rmat(scale=7, edge_factor=5, seed=24, weighted=True)
        engine = KickStarterEngine(graph, source=0)
        for _ in range(5):
            engine.apply_mutations(
                make_random_batch(engine.graph, rng, 15, 15)
            )
        engine.tree.depths()  # raises on parent cycles


@st.composite
def sssp_scenario(draw):
    num_vertices = draw(st.integers(3, 12))
    def edge():
        return st.tuples(
            st.integers(0, num_vertices - 1),
            st.integers(0, num_vertices - 1),
        ).filter(lambda e: e[0] != e[1])
    edges = draw(st.lists(edge(), min_size=1, max_size=25))
    batches = draw(
        st.lists(
            st.tuples(st.lists(edge(), max_size=5),
                      st.lists(edge(), max_size=5)),
            max_size=3,
        )
    )
    return num_vertices, edges, batches


class TestProperty:
    @given(sssp_scenario())
    @settings(max_examples=60, deadline=None)
    def test_always_exact(self, data):
        num_vertices, edges, batches = data
        graph = CSRGraph.from_edges(set(edges), num_vertices=num_vertices)
        engine = KickStarterEngine(graph, source=0)
        assert_distances_equal(engine.values, ground_truth(graph, 0))
        for additions, deletions in batches:
            engine.apply_mutations(
                MutationBatch.from_edges(additions=additions,
                                         deletions=deletions)
            )
            assert_distances_equal(
                engine.values, ground_truth(engine.graph, 0)
            )
