"""Unit tests for buffered mutation streams."""

from repro.graph.mutation import MutationBatch
from repro.graph.stream import MutationStream, coalesce_batches


def batch(additions=(), deletions=(), weights=None):
    return MutationBatch.from_edges(additions, deletions,
                                    add_weights=weights)


class TestQueueBasics:
    def test_fifo_order(self):
        stream = MutationStream([batch([(0, 1)]), batch([(1, 2)])])
        first = stream.take()
        second = stream.take()
        assert list(first.additions())[0][:2] == (0, 1)
        assert list(second.additions())[0][:2] == (1, 2)
        assert stream.take() is None

    def test_push_and_len(self):
        stream = MutationStream()
        assert not stream
        stream.push(batch([(0, 1)]))
        assert len(stream) == 1
        assert stream.pushed == 1

    def test_push_edges_convenience(self):
        stream = MutationStream()
        stream.push_edges(additions=[(0, 1)])
        assert stream.take().num_additions == 1

    def test_iteration_drains(self):
        stream = MutationStream([batch([(0, 1)]), batch([(2, 3)])])
        assert len(list(stream)) == 2
        assert not stream


class TestRefinementBuffering:
    def test_take_blocked_while_refining(self):
        stream = MutationStream([batch([(0, 1)])])
        stream.begin_refinement()
        assert stream.refining
        assert stream.take() is None
        assert stream.take_all() is None
        stream.end_refinement()
        assert stream.take() is not None

    def test_push_allowed_while_refining(self):
        stream = MutationStream()
        stream.begin_refinement()
        stream.push(batch([(0, 1)]))
        stream.end_refinement()
        assert len(stream) == 1

    def test_take_all_coalesces(self):
        stream = MutationStream([
            batch([(0, 1)]),
            batch([(1, 2)], deletions=[(0, 1)]),
        ])
        merged = stream.take_all()
        assert not stream
        # (0,1) added then deleted: the pending add is dropped, but the
        # delete stays (the original add may have been a skipped re-add
        # of a pre-existing edge).
        assert merged.num_additions == 1
        assert merged.num_deletions == 1

    def test_take_all_single_batch_passthrough(self):
        only = batch([(0, 1)])
        stream = MutationStream([only])
        assert stream.take_all() is only


class TestCoalesce:
    def test_delete_then_add_then_add_keeps_first_readd(self):
        merged = coalesce_batches([
            batch(deletions=[(0, 1)]),
            batch([(0, 1)], weights=[1.0]),
            batch([(0, 1)], weights=[5.0]),
        ])
        assert dict(
            ((s, d), w) for s, d, w in merged.additions()
        )[(0, 1)] == 1.0

    def test_delete_then_add_keeps_both(self):
        merged = coalesce_batches([
            batch(deletions=[(0, 1)]),
            batch([(0, 1)], weights=[2.0]),
        ])
        # Expressed against the pre-stream graph: delete old, add new.
        assert merged.num_deletions == 1
        assert merged.num_additions == 1

    def test_add_then_delete_becomes_delete(self):
        merged = coalesce_batches([
            batch([(5, 6)]),
            batch(deletions=[(5, 6)]),
        ])
        assert merged.num_additions == 0
        assert merged.num_deletions == 1

    def test_duplicate_adds_keep_first_weight(self):
        merged = coalesce_batches([
            batch([(0, 1)], weights=[1.5]),
            batch([(0, 1)], weights=[9.0]),
        ])
        assert list(merged.additions()) == [(0, 1, 1.5)]

    def test_grow_to_takes_max(self):
        merged = coalesce_batches([
            MutationBatch(grow_to=5),
            MutationBatch(grow_to=9),
            MutationBatch(grow_to=7),
        ])
        assert merged.grow_to == 9


class TestRandomStream:
    def test_generates_requested_batches(self):
        import numpy as np

        from repro.graph.stream import random_stream

        edges = np.array([[0, 1], [1, 2]]).T
        stream = random_stream(edges.reshape(-1), num_batches=3,
                               batch_size=5, seed=1)
        batches = list(stream)
        assert len(batches) == 3
        assert all(b.num_additions <= 5 for b in batches)
