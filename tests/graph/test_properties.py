"""Unit tests for graph statistics and degree bands."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat, star_graph
from repro.graph.properties import (
    degree_percentile_vertices,
    graph_stats,
)


class TestGraphStats:
    def test_basic_counts(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)],
                                    num_vertices=5)
        stats = graph_stats(graph)
        assert stats.num_vertices == 5
        assert stats.num_edges == 3
        assert stats.max_out_degree == 2
        assert stats.max_in_degree == 2
        assert stats.isolated_vertices == 2

    def test_star_skew_positive(self):
        stats = graph_stats(star_graph(50))
        assert stats.degree_skew > 1.0

    def test_empty_graph(self):
        stats = graph_stats(CSRGraph.from_edges([], num_vertices=3))
        assert stats.mean_degree == 0.0
        assert stats.degree_skew == 0.0

    def test_as_dict_keys(self):
        stats = graph_stats(star_graph(3))
        assert set(stats.as_dict()) == {
            "vertices", "edges", "max_out_degree", "max_in_degree",
            "mean_degree", "degree_skew", "isolated",
        }


class TestDegreeBands:
    def test_bands_partition_by_degree(self):
        graph = rmat(scale=8, edge_factor=6, seed=1)
        degrees = graph.out_degrees()
        low = degree_percentile_vertices(graph, 0.0, 0.4)
        high = degree_percentile_vertices(graph, 0.9, 1.0)
        assert degrees[low].max() <= degrees[high].min()

    def test_zero_degree_excluded(self):
        graph = CSRGraph.from_edges([(0, 1)], num_vertices=4)
        band = degree_percentile_vertices(graph, 0.0, 1.0)
        assert band.tolist() == [0]

    def test_full_band_covers_all_active(self):
        graph = rmat(scale=7, edge_factor=4, seed=2)
        band = degree_percentile_vertices(graph, 0.0, 1.0)
        assert band.size == int((graph.out_degrees() > 0).sum())

    def test_invalid_band(self):
        graph = star_graph(3)
        with pytest.raises(ValueError):
            degree_percentile_vertices(graph, 0.8, 0.2)
        with pytest.raises(ValueError):
            degree_percentile_vertices(graph, -0.1, 0.5)

    def test_in_degree_bands(self):
        graph = star_graph(10, outward=True)
        band = degree_percentile_vertices(graph, 0.0, 1.0, use_out=False)
        # Only leaves have in-degree.
        assert 0 not in band.tolist()

    def test_empty_graph_band(self):
        graph = CSRGraph.from_edges([], num_vertices=3)
        assert degree_percentile_vertices(graph, 0.0, 1.0).size == 0
