"""Tests for sliding-window streams."""

import numpy as np
import pytest

from repro.algorithms import PageRank
from repro.core.engine import GraphBoltEngine
from repro.graph.csr import CSRGraph
from repro.graph.mutable import StreamingGraph
from repro.graph.window import SlidingWindowStream
from repro.ligra.engine import LigraEngine


class TestWindowSemantics:
    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SlidingWindowStream(0)

    def test_new_edges_are_additions(self):
        stream = SlidingWindowStream(window=2)
        batch = stream.advance([(0, 1), (1, 2)])
        assert batch.num_additions == 2
        assert batch.num_deletions == 0
        assert stream.live_edges == 2

    def test_expiry_after_window(self):
        stream = SlidingWindowStream(window=2)
        stream.advance([(0, 1)])
        stream.advance([])
        batch = stream.advance([])
        assert list(batch.deletions()) == [(0, 1)]
        assert stream.live_edges == 0

    def test_reobservation_refreshes_lifetime(self):
        stream = SlidingWindowStream(window=2)
        stream.advance([(0, 1)])
        stream.advance([(0, 1)])  # refresh, no mutation
        batch = stream.advance([])
        assert len(batch) == 0  # original observation expired but edge
        assert (0, 1) in stream  # is still live via the refresh
        batch = stream.advance([])
        assert list(batch.deletions()) == [(0, 1)]

    def test_reobservation_same_weight_is_silent(self):
        stream = SlidingWindowStream(window=3)
        stream.advance([(0, 1)], weights=[2.0])
        batch = stream.advance([(0, 1)], weights=[2.0])
        assert len(batch) == 0

    def test_weight_change_is_replacement(self):
        stream = SlidingWindowStream(window=3)
        stream.advance([(0, 1)], weights=[2.0])
        batch = stream.advance([(0, 1)], weights=[5.0])
        assert list(batch.deletions()) == [(0, 1)]
        assert list(batch.additions()) == [(0, 1, 5.0)]

    def test_weights_length_mismatch(self):
        stream = SlidingWindowStream(window=2)
        with pytest.raises(ValueError):
            stream.advance([(0, 1)], weights=[1.0, 2.0])


class TestAgainstSetModel:
    def test_matches_window_recomputation(self):
        rng = np.random.default_rng(77)
        window = 3
        stream = SlidingWindowStream(window=window)
        graph = StreamingGraph(CSRGraph.from_edges([], num_vertices=20))
        history = []
        for step in range(12):
            observed = [
                (int(rng.integers(0, 20)), int(rng.integers(0, 20)))
                for _ in range(6)
            ]
            observed = [(u, v) for u, v in observed if u != v]
            history.append(observed)
            batch = stream.advance(observed)
            graph.apply_batch(batch)
            expected = set()
            for past in history[-window:]:
                expected.update(past)
            # Drop edges re-observed later... the window keeps an edge
            # iff its LAST observation is within the window.
            last_seen = {}
            for when, past in enumerate(history):
                for edge in past:
                    last_seen[edge] = when
            expected = {
                edge for edge, when in last_seen.items()
                if when > step - window
            }
            assert graph.graph.edge_set() == expected
            assert stream.live_edges == len(expected)


class TestEngineIntegration:
    def test_windowed_pagerank_stays_exact(self):
        rng = np.random.default_rng(78)
        stream = SlidingWindowStream(window=4)
        initial = CSRGraph.from_edges([(0, 1), (1, 0)], num_vertices=64)
        engine = GraphBoltEngine(PageRank(), num_iterations=8)
        engine.run(initial)
        for _ in range(10):
            observed = [
                (int(rng.integers(0, 64)), int(rng.integers(0, 64)))
                for _ in range(15)
            ]
            observed = [(u, v) for u, v in observed if u != v]
            batch = stream.advance(observed)
            values = engine.apply_mutations(batch)
            truth = LigraEngine(PageRank()).run(engine.graph, 8)
            assert np.allclose(values, truth, atol=1e-9)
        # Steady state: deletions flow every step.
        assert stream.live_edges < 15 * 4 + 2
