"""Unit tests for the CSR/CSC snapshot structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph, _ranges


def simple_graph():
    return CSRGraph.from_edges(
        [(0, 1), (0, 2), (1, 2), (2, 0), (3, 1)], num_vertices=4
    )


class TestConstruction:
    def test_shape(self):
        graph = simple_graph()
        assert graph.num_vertices == 4
        assert graph.num_edges == 5

    def test_empty_graph(self):
        graph = CSRGraph.from_edges([], num_vertices=3)
        assert graph.num_vertices == 3
        assert graph.num_edges == 0
        assert graph.out_neighbors(0).size == 0

    def test_zero_vertices(self):
        graph = CSRGraph.from_edges([], num_vertices=0)
        assert graph.num_vertices == 0

    def test_from_edges_infers_vertex_count(self):
        graph = CSRGraph.from_edges([(0, 7)])
        assert graph.num_vertices == 8

    def test_rejects_out_of_range_endpoint(self):
        with pytest.raises(ValueError, match="out of range"):
            CSRGraph(2, np.array([0]), np.array([5]))

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError, match="same shape"):
            CSRGraph(3, np.array([0, 1]), np.array([1]))

    def test_rejects_mismatched_weights(self):
        with pytest.raises(ValueError, match="weight"):
            CSRGraph(3, np.array([0]), np.array([1]), np.array([1.0, 2.0]))

    def test_default_weights_are_ones(self):
        graph = simple_graph()
        assert np.all(graph.out_weights == 1.0)

    def test_constructor_copies_input(self):
        src = np.array([0, 1])
        dst = np.array([1, 2])
        graph = CSRGraph(3, src, dst)
        src[0] = 2
        assert graph.has_edge(0, 1)

    def test_edges_with_no_vertices_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(0, np.array([0]), np.array([0]))


class TestNeighborhoods:
    def test_out_neighbors_sorted(self):
        graph = CSRGraph.from_edges([(0, 3), (0, 1), (0, 2)])
        assert graph.out_neighbors(0).tolist() == [1, 2, 3]

    def test_in_neighbors_sorted(self):
        graph = CSRGraph.from_edges([(3, 0), (1, 0), (2, 0)])
        assert graph.in_neighbors(0).tolist() == [1, 2, 3]

    def test_degrees(self):
        graph = simple_graph()
        assert graph.out_degrees().tolist() == [2, 1, 1, 1]
        assert graph.in_degrees().tolist() == [1, 2, 2, 0]
        assert graph.out_degree(0) == 2
        assert graph.in_degree(3) == 0

    def test_has_edge(self):
        graph = simple_graph()
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)
        assert not graph.has_edge(3, 3)

    def test_edge_weight(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2)], weights=[2.5, 0.5])
        assert graph.edge_weight(0, 1) == 2.5
        with pytest.raises(KeyError):
            graph.edge_weight(2, 0)

    def test_weights_follow_sorting(self):
        graph = CSRGraph.from_edges([(0, 2), (0, 1)], weights=[2.0, 1.0])
        assert graph.out_neighbor_weights(0).tolist() == [1.0, 2.0]
        assert graph.in_neighbor_weights(2).tolist() == [2.0]

    def test_in_weight_sums(self):
        graph = CSRGraph.from_edges(
            [(0, 2), (1, 2), (2, 0)], weights=[1.5, 2.0, 0.5]
        )
        assert graph.in_weight_sums().tolist() == [0.5, 0.0, 3.5]


class TestGathers:
    def test_all_edges_roundtrip(self):
        graph = simple_graph()
        src, dst, weight = graph.all_edges()
        assert set(zip(src.tolist(), dst.tolist())) == {
            (0, 1), (0, 2), (1, 2), (2, 0), (3, 1),
        }
        assert weight.size == 5

    def test_out_edges_of_subset(self):
        graph = simple_graph()
        src, dst, _ = graph.out_edges_of(np.array([0, 3]))
        assert sorted(zip(src.tolist(), dst.tolist())) == [
            (0, 1), (0, 2), (3, 1),
        ]

    def test_out_edges_of_empty(self):
        graph = simple_graph()
        src, dst, weight = graph.out_edges_of(np.array([], dtype=np.int64))
        assert src.size == dst.size == weight.size == 0

    def test_out_edges_of_isolated_vertex(self):
        graph = CSRGraph.from_edges([(0, 1)], num_vertices=3)
        src, dst, _ = graph.out_edges_of(np.array([2]))
        assert src.size == 0

    def test_in_edges_of_subset(self):
        graph = simple_graph()
        src, dst, _ = graph.in_edges_of(np.array([1, 2]))
        assert sorted(zip(src.tolist(), dst.tolist())) == [
            (0, 1), (0, 2), (1, 2), (3, 1),
        ]

    def test_in_edges_grouped_by_target(self):
        graph = simple_graph()
        _, dst, _ = graph.in_edges_of(np.array([2, 1]))
        # Groups appear in the order requested, contiguous per target.
        assert dst.tolist() == [2, 2, 1, 1]

    def test_out_edge_slots_alignment(self):
        graph = simple_graph()
        src, slots = graph.out_edge_slots(np.array([0, 2]))
        assert src.tolist() == [0, 0, 2]
        assert graph.out_targets[slots].tolist() == [1, 2, 0]

    def test_repeated_vertices_gather_repeatedly(self):
        graph = simple_graph()
        src, dst, _ = graph.out_edges_of(np.array([1, 1]))
        assert src.tolist() == [1, 1]
        assert dst.tolist() == [2, 2]


class TestConversions:
    def test_edge_set(self):
        assert simple_graph().edge_set() == {
            (0, 1), (0, 2), (1, 2), (2, 0), (3, 1),
        }

    def test_with_num_vertices_grows(self):
        graph = simple_graph().with_num_vertices(10)
        assert graph.num_vertices == 10
        assert graph.num_edges == 5
        assert graph.out_degree(9) == 0

    def test_with_num_vertices_same_is_identity(self):
        graph = simple_graph()
        assert graph.with_num_vertices(4) is graph

    def test_with_num_vertices_cannot_shrink(self):
        with pytest.raises(ValueError):
            simple_graph().with_num_vertices(2)

    def test_nbytes_positive(self):
        assert simple_graph().nbytes > 0

    def test_repr(self):
        assert "V=4" in repr(simple_graph())


class TestRangesHelper:
    def test_basic(self):
        starts = np.array([0, 5, 9])
        stops = np.array([3, 5, 11])
        assert _ranges(starts, stops).tolist() == [0, 1, 2, 9, 10]

    def test_all_empty(self):
        starts = np.array([4, 7])
        stops = np.array([4, 7])
        assert _ranges(starts, stops).size == 0

    def test_no_segments(self):
        assert _ranges(np.array([], dtype=np.int64),
                       np.array([], dtype=np.int64)).size == 0

    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 10)),
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_naive_concatenation(self, segments):
        starts = np.array([s for s, _ in segments], dtype=np.int64)
        stops = starts + np.array([l for _, l in segments], dtype=np.int64)
        expected = np.concatenate(
            [np.arange(s, e) for s, e in zip(starts, stops)]
        ) if segments else np.empty(0, dtype=np.int64)
        assert _ranges(starts, stops).tolist() == expected.tolist()


class TestFastPaths:
    """The presorted / from_canonical construct-from-store fast paths
    must match the sorting constructor bit-for-bit -- and provably skip
    the O(E log E) re-sort (satellite regression pin)."""

    def _canonical_edges(self):
        graph = simple_graph()
        src, dst, weight = graph.all_edges()  # already (src, dst) order
        return graph, src, dst, weight

    def test_presorted_matches_sorting_constructor(self):
        graph, src, dst, weight = self._canonical_edges()
        fast = CSRGraph(graph.num_vertices, src, dst, weight,
                        presorted=True)
        for name in ("out_offsets", "out_targets", "out_weights",
                     "in_offsets", "in_sources", "in_weights"):
            assert np.array_equal(getattr(graph, name),
                                  getattr(fast, name)), name

    def test_presorted_rejects_unsorted_input(self):
        with pytest.raises(ValueError, match="not in .src, dst. order"):
            CSRGraph(3, np.array([1, 0]), np.array([0, 1]),
                     presorted=True)

    def test_presorted_skips_edge_lexsort(self, monkeypatch):
        """Regression pin: the presorted path must never call
        ``np.lexsort`` (the O(E log E) CSR-side re-sort)."""
        graph, src, dst, weight = self._canonical_edges()

        def forbidden(*args, **kwargs):
            raise AssertionError("presorted path re-sorted the edges")

        monkeypatch.setattr(np, "lexsort", forbidden)
        fast = CSRGraph(graph.num_vertices, src, dst, weight,
                        presorted=True)
        assert fast.num_edges == graph.num_edges

    def test_from_canonical_skips_all_sorts_and_copies(self, monkeypatch):
        """Regression pin: the store-load path does zero sorting and
        adopts the arrays by reference (memmap views stay memmaps)."""
        graph = simple_graph()
        arrays = {name: getattr(graph, name)
                  for name in ("out_offsets", "out_targets",
                               "out_weights", "in_offsets",
                               "in_sources", "in_weights")}

        def forbidden(*args, **kwargs):
            raise AssertionError("from_canonical sorted something")

        monkeypatch.setattr(np, "lexsort", forbidden)
        monkeypatch.setattr(np, "argsort", forbidden)
        adopted = CSRGraph.from_canonical(graph.num_vertices, **arrays)
        for name, array in arrays.items():
            assert getattr(adopted, name) is array, name

    def test_from_canonical_validates_offsets(self):
        graph = simple_graph()
        bad = graph.out_offsets.copy()
        bad[-1] += 1
        with pytest.raises(ValueError, match="disagree with edges"):
            CSRGraph.from_canonical(
                graph.num_vertices, bad, graph.out_targets,
                graph.out_weights, graph.in_offsets, graph.in_sources,
                graph.in_weights,
            )
