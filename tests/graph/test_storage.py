"""Unit tests for the pluggable snapshot stores.

The contract under test: :class:`MmapStore` is a drop-in behind the
unchanged :class:`CSRGraph` slice API -- every array it serves is
bit-for-bit equal to the heap build it was published from, torn or
corrupted segments are detected by CRC/header checks, and generation
lifecycle (live refs, pins, compaction) never deletes a reachable
snapshot.
"""

import os

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat, rmat_streamed, rmat_xl
from repro.graph.mutable import StreamingGraph
from repro.graph.mutation import MutationBatch
from repro.graph.storage import (
    ARRAY_NAMES,
    ENV_SNAPSHOT_STORE,
    HeapStore,
    MmapStore,
    StoreError,
    store_from_env,
    store_from_spec,
)


def small_graph(seed=3):
    return rmat(6, 4, seed=seed, weighted=True)


def assert_graphs_equal(left, right):
    assert left.num_vertices == right.num_vertices
    for name in ARRAY_NAMES:
        assert np.array_equal(np.asarray(getattr(left, name)),
                              np.asarray(getattr(right, name))), name


class TestHeapStore:
    def test_publish_is_identity_for_heap_graphs(self):
        graph = small_graph()
        store = HeapStore()
        assert store.publish(graph) is graph

    def test_writer_round_trip(self):
        graph = small_graph()
        store = HeapStore()
        writer = store.writer()
        for name in ARRAY_NAMES:
            writer.append(name, getattr(graph, name))
        rebuilt = writer.commit(graph.num_vertices)
        assert_graphs_equal(graph, rebuilt)

    def test_describe(self):
        assert HeapStore().describe() == "heap"


class TestMmapRoundTrip:
    def test_publish_serves_equal_memmap_views(self, tmp_path):
        graph = small_graph()
        store = MmapStore(str(tmp_path))
        published = store.publish(graph)
        assert_graphs_equal(graph, published)
        assert isinstance(published.out_targets, np.memmap)
        assert published.store is store
        assert published.snapshot_id == store.current_snapshot

    def test_reopen_from_fresh_store_object(self, tmp_path):
        graph = small_graph()
        MmapStore(str(tmp_path)).publish(graph)
        reopened = MmapStore(str(tmp_path)).open_snapshot()
        assert_graphs_equal(graph, reopened)

    def test_empty_graph_round_trips(self, tmp_path):
        graph = CSRGraph.from_edges([], num_vertices=4)
        published = MmapStore(str(tmp_path)).publish(graph)
        assert_graphs_equal(graph, published)

    def test_publish_same_snapshot_is_idempotent(self, tmp_path):
        store = MmapStore(str(tmp_path))
        published = store.publish(small_graph())
        assert store.publish(published) is published

    def test_engine_slice_api_unchanged(self, tmp_path):
        graph = small_graph()
        published = MmapStore(str(tmp_path)).publish(graph)
        for v in range(graph.num_vertices):
            assert np.array_equal(graph.out_neighbors(v),
                                  published.out_neighbors(v))
            assert np.array_equal(graph.in_neighbors(v),
                                  published.in_neighbors(v))


class TestIntegrity:
    def _segment_path(self, store, name="out_targets"):
        entry = store.manifest_entry(store.current_snapshot)
        return os.path.join(store.root, entry["arrays"][name]["file"])

    def test_verify_passes_on_clean_store(self, tmp_path):
        store = MmapStore(str(tmp_path))
        store.publish(small_graph())
        store.verify()

    def test_verify_detects_flipped_payload_byte(self, tmp_path):
        store = MmapStore(str(tmp_path))
        store.publish(small_graph())
        path = self._segment_path(store)
        with open(path, "r+b") as stream:
            stream.seek(-1, os.SEEK_END)
            byte = stream.read(1)
            stream.seek(-1, os.SEEK_END)
            stream.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(StoreError, match="CRC mismatch"):
            MmapStore(str(tmp_path)).verify()

    def test_open_detects_corrupt_header(self, tmp_path):
        store = MmapStore(str(tmp_path))
        store.publish(small_graph())
        path = self._segment_path(store)
        with open(path, "r+b") as stream:
            stream.write(b"XXXXXXXX")
        with pytest.raises(StoreError):
            MmapStore(str(tmp_path)).open_snapshot()

    def test_open_detects_truncated_segment(self, tmp_path):
        store = MmapStore(str(tmp_path))
        store.publish(small_graph())
        path = self._segment_path(store)
        os.truncate(path, os.path.getsize(path) - 8)
        with pytest.raises(StoreError):
            MmapStore(str(tmp_path)).open_snapshot()


class TestLifecycle:
    def _mutate(self, streaming, step):
        batch = MutationBatch.from_edges(
            additions=[(step % 5, (step + 7) % 11)],
            deletions=[],
        )
        streaming.apply_batch(batch)

    def test_retired_generations_are_compacted(self, tmp_path):
        store = MmapStore(str(tmp_path))
        streaming = StreamingGraph(store.publish(small_graph()))
        for step in range(4):
            self._mutate(streaming, step)
        # StreamingGraph holds current + previous; everything older is
        # released and must be gone from manifest and disk.
        assert len(store.snapshot_ids()) <= 2
        on_disk = [f for f in os.listdir(str(tmp_path))
                   if f.endswith(".seg")]
        referenced = set()
        for sid in store.snapshot_ids():
            referenced.update(store.segment_files(sid))
        assert sorted(on_disk) == sorted(referenced)

    def test_pin_outlives_release_until_owner_vanishes(self, tmp_path):
        root = tmp_path / "store"
        owner = tmp_path / "checkpoint.json"
        owner.write_text("{}")
        store = MmapStore(str(root))
        published = store.publish(small_graph())
        pinned_id = published.snapshot_id
        store.pin(pinned_id, str(owner))
        streaming = StreamingGraph(published)
        for step in range(4):
            self._mutate(streaming, step)
        assert pinned_id in store.snapshot_ids()
        owner.unlink()
        store.compact()
        assert pinned_id not in store.snapshot_ids()


class TestSelection:
    def test_spec_heap(self):
        assert isinstance(store_from_spec("heap"), HeapStore)
        assert isinstance(store_from_spec(None), HeapStore)

    def test_spec_mmap_with_dir(self, tmp_path):
        store = store_from_spec(f"mmap:{tmp_path}")
        assert isinstance(store, MmapStore)
        assert store.root == str(tmp_path)

    def test_spec_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown snapshot store"):
            store_from_spec("tape")

    def test_spec_rejects_heap_with_dir(self):
        with pytest.raises(ValueError, match="takes no directory"):
            store_from_spec("heap:/tmp/x")

    def test_env_selection(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_SNAPSHOT_STORE, f"mmap:{tmp_path}")
        store = store_from_env()
        assert isinstance(store, MmapStore)
        monkeypatch.delenv(ENV_SNAPSHOT_STORE)
        assert isinstance(store_from_env(), HeapStore)


class TestAdjust:
    """Segment-wise structure adjustment must match the heap rebuild
    bit-for-bit, including vertex-growing batches."""

    def _batches(self, graph):
        src, dst, _ = graph.all_edges()
        n = graph.num_vertices
        yield MutationBatch.from_edges(
            additions=[(0, n - 1), (2, 4)],
            deletions=[(int(src[0]), int(dst[0]))],
            add_weights=[0.5, 1.5],
        )
        yield MutationBatch.from_edges(
            additions=[(n + 2, 1), (3, n)],  # grows the vertex set
            deletions=[(int(src[-1]), int(dst[-1]))],
            add_weights=[2.0, 0.25],
            grow_to=n + 3,
        )

    def test_mmap_adjust_matches_heap_rebuild(self, tmp_path):
        base = small_graph(seed=11)
        heap = StreamingGraph(base)
        mmapped = StreamingGraph(MmapStore(str(tmp_path)).publish(base))
        for batch in self._batches(base):
            heap.apply_batch(batch)
            mmapped.apply_batch(batch)
            assert_graphs_equal(heap.graph, mmapped.graph)
        assert isinstance(mmapped.graph.out_targets, np.memmap)


class TestXLTier:
    def test_rmat_streamed_equals_materialized_build(self, tmp_path):
        heap = rmat_xl(9, 6, seed=5, store=HeapStore())
        mmapped = rmat_xl(9, 6, seed=5,
                          store=MmapStore(str(tmp_path)))
        assert_graphs_equal(heap, mmapped)
        assert isinstance(mmapped.out_targets, np.memmap)

    def test_rmat_streamed_spools_through_store(self, tmp_path):
        store = MmapStore(str(tmp_path))
        graph = rmat_streamed(9, 6, seed=5, store=store,
                              chunk_edges=1 << 10)
        assert graph.store is store
        store.verify()
