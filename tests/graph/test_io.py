"""Round-trip tests for graph and mutation-stream serialisation."""

import numpy as np
import pytest

from repro.graph import io
from repro.graph.generators import rmat
from repro.graph.mutation import MutationBatch


@pytest.fixture
def graph():
    return rmat(scale=6, edge_factor=4, seed=2, weighted=True)


class TestEdgeListText:
    def test_roundtrip_weighted(self, graph, tmp_path):
        path = str(tmp_path / "graph.txt")
        io.save_edge_list(graph, path)
        loaded = io.load_edge_list(path)
        assert loaded.edge_set() == graph.edge_set()
        assert np.allclose(
            sorted(loaded.out_weights), sorted(graph.out_weights)
        )

    def test_roundtrip_unweighted(self, graph, tmp_path):
        path = str(tmp_path / "graph.txt")
        io.save_edge_list(graph, path, write_weights=False)
        loaded = io.load_edge_list(path)
        assert loaded.edge_set() == graph.edge_set()
        assert np.all(loaded.out_weights == 1.0)

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# comment\n\n% another\n0 1\n1 2 2.5\n")
        loaded = io.load_edge_list(str(path))
        assert loaded.edge_set() == {(0, 1), (1, 2)}
        assert loaded.edge_weight(1, 2) == 2.5

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("42\n")
        with pytest.raises(ValueError, match="malformed"):
            io.load_edge_list(str(path))

    def test_explicit_vertex_count(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1\n")
        loaded = io.load_edge_list(str(path), num_vertices=10)
        assert loaded.num_vertices == 10


class TestNpz:
    def test_roundtrip(self, graph, tmp_path):
        path = str(tmp_path / "graph.npz")
        io.save_npz(graph, path)
        loaded = io.load_npz(path)
        assert loaded.num_vertices == graph.num_vertices
        assert loaded.edge_set() == graph.edge_set()


class TestMutationStreams:
    def test_roundtrip(self, tmp_path):
        batches = [
            MutationBatch.from_edges(additions=[(0, 1), (2, 3)],
                                     add_weights=[0.5, 1.5]),
            MutationBatch.from_edges(deletions=[(4, 5)]),
            MutationBatch.empty(),
        ]
        path = str(tmp_path / "stream.npz")
        io.save_mutation_stream(batches, path)
        loaded = io.load_mutation_stream(path)
        assert len(loaded) == 3
        assert list(loaded[0].additions()) == [(0, 1, 0.5), (2, 3, 1.5)]
        assert list(loaded[1].deletions()) == [(4, 5)]
        assert len(loaded[2]) == 0


def test_ensure_dir(tmp_path):
    target = str(tmp_path / "a" / "b")
    assert io.ensure_dir(target) == target
    assert io.ensure_dir(target) == target  # idempotent
