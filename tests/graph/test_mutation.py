"""Unit tests for mutation batches."""

import numpy as np
import pytest

from repro.graph.mutation import MutationBatch


class TestConstruction:
    def test_empty(self):
        batch = MutationBatch.empty()
        assert len(batch) == 0
        assert not batch

    def test_counts(self):
        batch = MutationBatch.from_edges(
            additions=[(0, 1), (1, 2)], deletions=[(2, 3)]
        )
        assert batch.num_additions == 2
        assert batch.num_deletions == 1
        assert len(batch) == 3
        assert batch

    def test_grow_to_only_batch_is_truthy(self):
        assert MutationBatch(grow_to=10)

    def test_default_weights(self):
        batch = MutationBatch.from_edges(additions=[(0, 1)])
        assert batch.add_weight.tolist() == [1.0]

    def test_explicit_weights(self):
        batch = MutationBatch.from_edges(
            additions=[(0, 1), (2, 3)], add_weights=[0.5, 1.5]
        )
        assert batch.add_weight.tolist() == [0.5, 1.5]

    def test_rejects_negative_ids(self):
        with pytest.raises(ValueError, match="non-negative"):
            MutationBatch(add_src=[-1], add_dst=[0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="match"):
            MutationBatch(add_src=[0, 1], add_dst=[1])
        with pytest.raises(ValueError, match="match"):
            MutationBatch(del_src=[0], del_dst=[1, 2])
        with pytest.raises(ValueError, match="weights"):
            MutationBatch(add_src=[0], add_dst=[1], add_weight=[1.0, 2.0])


class TestNormalisation:
    def test_duplicate_additions_deduped_first_wins(self):
        batch = MutationBatch.from_edges(
            additions=[(0, 1), (0, 1), (1, 2)], add_weights=[2.0, 9.0, 1.0]
        )
        assert batch.num_additions == 2
        adds = dict(((s, d), w) for s, d, w in batch.additions())
        assert adds[(0, 1)] == 2.0

    def test_duplicate_deletions_deduped(self):
        batch = MutationBatch.from_edges(deletions=[(0, 1), (0, 1)])
        assert batch.num_deletions == 1

    def test_add_and_delete_of_same_edge_kept_as_replace(self):
        # Deletions apply before additions, so the pair means "replace".
        batch = MutationBatch.from_edges(
            additions=[(0, 1), (1, 2)], deletions=[(0, 1)]
        )
        assert batch.num_additions == 2
        assert batch.num_deletions == 1

    def test_self_loops_dropped(self):
        batch = MutationBatch.from_edges(
            additions=[(3, 3), (0, 1)], deletions=[(2, 2)]
        )
        assert batch.num_additions == 1
        assert batch.num_deletions == 0
        assert batch.dropped_self_loops == 2


class TestQueries:
    def test_max_vertex(self):
        batch = MutationBatch.from_edges(
            additions=[(0, 9)], deletions=[(4, 2)]
        )
        assert batch.max_vertex() == 9

    def test_max_vertex_includes_grow_to(self):
        batch = MutationBatch(grow_to=20)
        assert batch.max_vertex() == 19

    def test_max_vertex_empty(self):
        assert MutationBatch.empty().max_vertex() == -1

    def test_iterators(self):
        batch = MutationBatch.from_edges(
            additions=[(0, 1)], deletions=[(2, 3)], add_weights=[0.25]
        )
        assert list(batch.additions()) == [(0, 1, 0.25)]
        assert list(batch.deletions()) == [(2, 3)]

    def test_repr(self):
        batch = MutationBatch.from_edges(additions=[(0, 1)], grow_to=5)
        text = repr(batch)
        assert "+1" in text and "grow_to=5" in text

    def test_numpy_inputs(self):
        batch = MutationBatch(
            add_src=np.array([0, 1]), add_dst=np.array([1, 2])
        )
        assert batch.num_additions == 2


class TestStreamEdgeCases:
    """Edge cases the differential fuzzer exercises routinely; these pin
    the structure-adjustment semantics the engines rely on."""

    def _streaming(self):
        from repro.graph.csr import CSRGraph
        from repro.graph.mutable import StreamingGraph

        graph = CSRGraph.from_edges(
            [(0, 1), (1, 2), (2, 0)], num_vertices=3,
            weights=[1.0, 2.0, 3.0],
        )
        return StreamingGraph(graph)

    def test_delete_nonexistent_edge_is_skipped(self):
        streaming = self._streaming()
        result = streaming.apply_batch(
            MutationBatch.from_edges(deletions=[(0, 2)])
        )
        assert result.skipped_deletions == 1
        assert result.del_src.size == 0
        assert streaming.graph.num_edges == 3
        assert streaming.graph.num_vertices == 3

    def test_delete_beyond_capacity_skips_but_grows(self):
        # Stream semantics: any vertex id observed in the feed comes to
        # exist, even when the edge operation itself is a stale no-op.
        streaming = self._streaming()
        result = streaming.apply_batch(
            MutationBatch.from_edges(deletions=[(7, 8)])
        )
        assert result.skipped_deletions == 1
        assert streaming.graph.num_vertices == 9
        assert streaming.graph.num_edges == 3
        assert result.grew()

    def test_duplicate_insertions_first_weight_wins(self):
        batch = MutationBatch.from_edges(
            additions=[(0, 2), (0, 2)], add_weights=[5.0, 9.0]
        )
        assert batch.num_additions == 1
        assert batch.add_weight.tolist() == [5.0]
        streaming = self._streaming()
        streaming.apply_batch(batch)
        assert streaming.graph.num_edges == 4
        src, dst, weight = streaming.graph.all_edges()
        edges = {(int(u), int(v)): float(w)
                 for u, v, w in zip(src, dst, weight)}
        assert edges[(0, 2)] == 5.0

    def test_duplicate_of_existing_edge_is_skipped(self):
        streaming = self._streaming()
        result = streaming.apply_batch(
            MutationBatch.from_edges(additions=[(0, 1)],
                                     add_weights=[9.0])
        )
        assert result.skipped_additions == 1
        src, dst, weight = streaming.graph.all_edges()
        edges = {(int(u), int(v)): float(w)
                 for u, v, w in zip(src, dst, weight)}
        assert edges[(0, 1)] == 1.0  # original weight preserved

    def test_addition_beyond_capacity_grows_graph(self):
        streaming = self._streaming()
        result = streaming.apply_batch(
            MutationBatch.from_edges(additions=[(1, 20)])
        )
        assert streaming.graph.num_vertices == 21
        assert streaming.graph.num_edges == 4
        assert result.grew()
        # The grown id range is reported as changed so engines extend
        # their value arrays.
        assert 20 in result.in_changed_vertices().tolist()

    def test_engines_survive_all_edge_cases_end_to_end(self):
        # The refinement engine must stay BSP-equivalent through the
        # full gauntlet applied as one stream.
        import numpy as np

        from repro.algorithms import PageRank
        from repro.core.engine import GraphBoltEngine
        from repro.ligra.engine import LigraEngine

        streaming = self._streaming()
        engine = GraphBoltEngine(PageRank(tolerance=1e-9),
                                 num_iterations=8)
        engine.run(streaming.graph)
        gauntlet = [
            MutationBatch.from_edges(deletions=[(0, 2)]),
            MutationBatch.from_edges(deletions=[(7, 8)]),
            MutationBatch.from_edges(additions=[(0, 2), (0, 2)],
                                     add_weights=[5.0, 9.0]),
            MutationBatch.from_edges(additions=[(1, 20)]),
            MutationBatch.empty(),
        ]
        for batch in gauntlet:
            values = engine.apply_mutations(batch)
            truth = LigraEngine(PageRank(tolerance=1e-9)).run(
                engine.graph, 8
            )
            assert np.allclose(values, truth, atol=1e-9)


class TestValidate:
    """The ingest-boundary check the admission controller relies on."""

    def test_clean_batch_passes(self):
        batch = MutationBatch.from_edges(additions=[(0, 5)],
                                         deletions=[(1, 2)])
        batch.validate(6)  # no exception
        batch.validate(6, max_growth=0)

    def test_deletion_endpoint_out_of_range(self):
        batch = MutationBatch.from_edges(deletions=[(1, 99)])
        with pytest.raises(ValueError, match="deletion endpoint"):
            batch.validate(10)
        batch.validate(100)  # in range once the graph is big enough

    def test_additions_may_grow_without_a_budget(self):
        batch = MutationBatch.from_edges(additions=[(0, 500)])
        batch.validate(10)  # implicit growth is fine by default

    def test_growth_budget_enforced(self):
        batch = MutationBatch.from_edges(additions=[(0, 15)])
        batch.validate(10, max_growth=6)
        with pytest.raises(ValueError, match="growth budget"):
            batch.validate(10, max_growth=5)

    def test_grow_to_counts_against_the_budget(self):
        batch = MutationBatch.from_edges(grow_to=20)
        batch.validate(10, max_growth=10)
        with pytest.raises(ValueError, match="growth budget"):
            batch.validate(10, max_growth=9)

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            MutationBatch.empty().validate(-1)


class TestConstructionBoundaries:
    def test_float_ids_rejected_not_truncated(self):
        with pytest.raises(ValueError, match="integer dtype"):
            MutationBatch.from_edges(additions=[(0.5, 1.5)])

    def test_string_ids_rejected(self):
        with pytest.raises(ValueError, match="integer dtype"):
            MutationBatch(add_src=["a"], add_dst=["b"])

    def test_empty_lists_are_fine_despite_float64_default(self):
        batch = MutationBatch(add_src=[], add_dst=[], del_src=[],
                              del_dst=[])
        assert len(batch) == 0

    def test_non_finite_weights_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            MutationBatch.from_edges(additions=[(0, 1)],
                                     add_weights=[float("nan")])
        with pytest.raises(ValueError, match="finite"):
            MutationBatch.from_edges(additions=[(0, 1)],
                                     add_weights=[float("inf")])

    def test_fractional_grow_to_rejected(self):
        with pytest.raises(ValueError, match="integer vertex count"):
            MutationBatch.from_edges(grow_to=7.5)
        assert MutationBatch.from_edges(grow_to=7.0).grow_to == 7

    def test_negative_grow_to_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            MutationBatch.from_edges(grow_to=-3)


class TestMerge:
    """The edge-level state machine behind the coalesce policy."""

    def test_delete_then_add_is_a_replacement(self):
        first = MutationBatch.from_edges(deletions=[(0, 1)])
        second = MutationBatch.from_edges(additions=[(0, 1)],
                                          add_weights=[4.0])
        merged = first.merge(second)
        assert list(merged.deletions()) == [(0, 1)]
        assert list(merged.additions()) == [(0, 1, 4.0)]

    def test_add_then_delete_is_a_delete(self):
        first = MutationBatch.from_edges(additions=[(0, 1)])
        second = MutationBatch.from_edges(deletions=[(0, 1)])
        merged = first.merge(second)
        assert list(merged.deletions()) == [(0, 1)]
        assert merged.num_additions == 0

    def test_first_add_wins(self):
        # Stream semantics: the second add would be skipped as a
        # re-addition, so the merged batch must carry the first weight.
        first = MutationBatch.from_edges(additions=[(2, 3)],
                                         add_weights=[1.5])
        second = MutationBatch.from_edges(additions=[(2, 3)],
                                          add_weights=[9.9])
        merged = first.merge(second)
        assert list(merged.additions()) == [(2, 3, 1.5)]

    def test_grow_to_takes_the_maximum(self):
        first = MutationBatch.from_edges(grow_to=10)
        second = MutationBatch.from_edges(grow_to=7)
        assert first.merge(second).grow_to == 10
        assert second.merge(first).grow_to == 10
        third = MutationBatch.from_edges(additions=[(0, 1)])
        assert third.merge(first).grow_to == 10
        assert third.merge(MutationBatch.empty()).grow_to is None

    def test_merge_matches_sequential_application(self):
        from repro.graph.generators import rmat
        from repro.graph.mutable import StreamingGraph
        from tests.conftest import make_random_batch

        rng = np.random.default_rng(31)
        for trial in range(10):
            graph = rmat(scale=5, edge_factor=3, seed=trial,
                         weighted=True)
            batches = []
            live = StreamingGraph(graph)
            for _ in range(3):
                batch = make_random_batch(live.graph, rng, 6, 6)
                batches.append(batch)
                live.apply_batch(batch)
            merged = batches[0]
            for batch in batches[1:]:
                merged = merged.merge(batch)
            folded = StreamingGraph(graph)
            folded.apply_batch(merged)
            seq_src, seq_dst, seq_w = live.graph.all_edges()
            fold_src, fold_dst, fold_w = folded.graph.all_edges()
            assert np.array_equal(seq_src, fold_src), trial
            assert np.array_equal(seq_dst, fold_dst), trial
            assert np.array_equal(seq_w, fold_w), trial
