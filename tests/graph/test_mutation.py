"""Unit tests for mutation batches."""

import numpy as np
import pytest

from repro.graph.mutation import MutationBatch


class TestConstruction:
    def test_empty(self):
        batch = MutationBatch.empty()
        assert len(batch) == 0
        assert not batch

    def test_counts(self):
        batch = MutationBatch.from_edges(
            additions=[(0, 1), (1, 2)], deletions=[(2, 3)]
        )
        assert batch.num_additions == 2
        assert batch.num_deletions == 1
        assert len(batch) == 3
        assert batch

    def test_grow_to_only_batch_is_truthy(self):
        assert MutationBatch(grow_to=10)

    def test_default_weights(self):
        batch = MutationBatch.from_edges(additions=[(0, 1)])
        assert batch.add_weight.tolist() == [1.0]

    def test_explicit_weights(self):
        batch = MutationBatch.from_edges(
            additions=[(0, 1), (2, 3)], add_weights=[0.5, 1.5]
        )
        assert batch.add_weight.tolist() == [0.5, 1.5]

    def test_rejects_negative_ids(self):
        with pytest.raises(ValueError, match="non-negative"):
            MutationBatch(add_src=[-1], add_dst=[0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="match"):
            MutationBatch(add_src=[0, 1], add_dst=[1])
        with pytest.raises(ValueError, match="match"):
            MutationBatch(del_src=[0], del_dst=[1, 2])
        with pytest.raises(ValueError, match="weights"):
            MutationBatch(add_src=[0], add_dst=[1], add_weight=[1.0, 2.0])


class TestNormalisation:
    def test_duplicate_additions_deduped_first_wins(self):
        batch = MutationBatch.from_edges(
            additions=[(0, 1), (0, 1), (1, 2)], add_weights=[2.0, 9.0, 1.0]
        )
        assert batch.num_additions == 2
        adds = dict(((s, d), w) for s, d, w in batch.additions())
        assert adds[(0, 1)] == 2.0

    def test_duplicate_deletions_deduped(self):
        batch = MutationBatch.from_edges(deletions=[(0, 1), (0, 1)])
        assert batch.num_deletions == 1

    def test_add_and_delete_of_same_edge_kept_as_replace(self):
        # Deletions apply before additions, so the pair means "replace".
        batch = MutationBatch.from_edges(
            additions=[(0, 1), (1, 2)], deletions=[(0, 1)]
        )
        assert batch.num_additions == 2
        assert batch.num_deletions == 1

    def test_self_loops_dropped(self):
        batch = MutationBatch.from_edges(
            additions=[(3, 3), (0, 1)], deletions=[(2, 2)]
        )
        assert batch.num_additions == 1
        assert batch.num_deletions == 0
        assert batch.dropped_self_loops == 2


class TestQueries:
    def test_max_vertex(self):
        batch = MutationBatch.from_edges(
            additions=[(0, 9)], deletions=[(4, 2)]
        )
        assert batch.max_vertex() == 9

    def test_max_vertex_includes_grow_to(self):
        batch = MutationBatch(grow_to=20)
        assert batch.max_vertex() == 19

    def test_max_vertex_empty(self):
        assert MutationBatch.empty().max_vertex() == -1

    def test_iterators(self):
        batch = MutationBatch.from_edges(
            additions=[(0, 1)], deletions=[(2, 3)], add_weights=[0.25]
        )
        assert list(batch.additions()) == [(0, 1, 0.25)]
        assert list(batch.deletions()) == [(2, 3)]

    def test_repr(self):
        batch = MutationBatch.from_edges(additions=[(0, 1)], grow_to=5)
        text = repr(batch)
        assert "+1" in text and "grow_to=5" in text

    def test_numpy_inputs(self):
        batch = MutationBatch(
            add_src=np.array([0, 1]), add_dst=np.array([1, 2])
        )
        assert batch.num_additions == 2
