"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph import generators as gen


def assert_simple(graph):
    """No self-loops, no duplicate edges."""
    src, dst, _ = graph.all_edges()
    assert np.all(src != dst)
    pairs = set(zip(src.tolist(), dst.tolist()))
    assert len(pairs) == graph.num_edges


class TestRmat:
    def test_shape_and_simplicity(self):
        graph = gen.rmat(scale=8, edge_factor=8, seed=1)
        assert graph.num_vertices == 256
        assert 0 < graph.num_edges <= 8 * 256
        assert_simple(graph)

    def test_deterministic(self):
        a = gen.rmat(scale=7, edge_factor=4, seed=9)
        b = gen.rmat(scale=7, edge_factor=4, seed=9)
        assert a.edge_set() == b.edge_set()

    def test_seed_changes_graph(self):
        a = gen.rmat(scale=7, edge_factor=4, seed=1)
        b = gen.rmat(scale=7, edge_factor=4, seed=2)
        assert a.edge_set() != b.edge_set()

    def test_skewed_degrees(self):
        graph = gen.rmat(scale=10, edge_factor=8, seed=3)
        degrees = graph.out_degrees()
        assert degrees.max() > 8 * degrees.mean()

    def test_weighted(self):
        graph = gen.rmat(scale=6, edge_factor=4, seed=1, weighted=True)
        weights = graph.out_weights
        assert np.all((weights >= 0.5) & (weights < 1.5))

    def test_invalid_partition(self):
        with pytest.raises(ValueError):
            gen.rmat(scale=5, a=0.5, b=0.5, c=0.5)


class TestErdosRenyi:
    def test_exact_edge_count(self):
        graph = gen.erdos_renyi(num_vertices=50, num_edges=200, seed=4)
        assert graph.num_edges == 200
        assert_simple(graph)

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            gen.erdos_renyi(num_vertices=3, num_edges=100)


class TestPreferentialAttachment:
    def test_shape(self):
        graph = gen.preferential_attachment(num_vertices=100, out_degree=3,
                                            seed=5)
        assert graph.num_vertices == 100
        assert_simple(graph)
        # Every late vertex attaches to exactly out_degree targets.
        assert graph.out_degrees()[3:].min() == 3

    def test_skew(self):
        graph = gen.preferential_attachment(num_vertices=300, out_degree=2,
                                            seed=6)
        in_degrees = graph.in_degrees()
        assert in_degrees.max() > 10 * max(in_degrees.mean(), 1e-9)

    def test_too_few_vertices(self):
        with pytest.raises(ValueError):
            gen.preferential_attachment(num_vertices=3, out_degree=3)


class TestWattsStrogatz:
    def test_shape_and_simplicity(self):
        graph = gen.watts_strogatz(200, neighbors_each_side=3,
                                   rewire_probability=0.1, seed=7)
        assert graph.num_vertices == 200
        assert_simple(graph)

    def test_zero_rewiring_is_regular(self):
        graph = gen.watts_strogatz(50, neighbors_each_side=2,
                                   rewire_probability=0.0)
        assert np.all(graph.out_degrees() == 4)

    def test_invalid_neighbors(self):
        with pytest.raises(ValueError):
            gen.watts_strogatz(10, neighbors_each_side=0)


class TestDeterministicShapes:
    def test_grid(self):
        graph = gen.grid_graph(3, 4)
        assert graph.num_vertices == 12
        # Right edges: 3 rows x 3, down edges: 2 x 4.
        assert graph.num_edges == 9 + 8

    def test_star_outward(self):
        graph = gen.star_graph(5, outward=True)
        assert graph.out_degree(0) == 5
        assert graph.in_degree(0) == 0

    def test_star_inward(self):
        graph = gen.star_graph(5, outward=False)
        assert graph.in_degree(0) == 5

    def test_cycle(self):
        graph = gen.cycle_graph(6)
        assert graph.num_edges == 6
        assert np.all(graph.out_degrees() == 1)

    def test_complete(self):
        graph = gen.complete_graph(5)
        assert graph.num_edges == 20


class TestBipartite:
    def test_structure(self):
        graph = gen.bipartite_graph(num_users=20, num_items=10,
                                    edges_per_user=3, seed=8)
        assert graph.num_vertices == 30
        # Symmetric rating edges: every user edge has a mirror.
        src, dst, _ = graph.all_edges()
        edges = set(zip(src.tolist(), dst.tolist()))
        assert all((d, s) in edges for s, d in edges)

    def test_ratings_in_range(self):
        graph = gen.bipartite_graph(10, 5, 2, seed=9)
        weights = graph.out_weights
        assert np.all((weights >= 1) & (weights <= 5))


class TestPaperGraphs:
    def test_all_names_resolve(self):
        sizes = []
        for name in gen.PAPER_GRAPH_SCALES:
            graph = gen.paper_graph(name)
            sizes.append((name, graph.num_edges))
            assert_simple(graph)
        # The paper's size ordering is preserved.
        ordered = [edges for _, edges in sizes]
        assert ordered == sorted(ordered)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            gen.paper_graph("nope")

    def test_uk_is_high_locality(self):
        uk = gen.paper_graph("UK")
        tw = gen.paper_graph("TW")
        # The web stand-in is far less skewed than the social stand-ins.
        assert uk.out_degrees().max() < tw.out_degrees().max() / 4
