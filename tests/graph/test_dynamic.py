"""Tests for the STINGER-inspired dynamic structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import CoEM, PageRank, WeightedPageRank
from repro.core.engine import GraphBoltEngine
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import (
    DynamicGraph,
    DynamicStreamingGraph,
    FrozenGraphParams,
)
from repro.graph.generators import rmat
from repro.graph.mutation import MutationBatch
from repro.ligra.engine import LigraEngine
from tests.conftest import make_random_batch


def base_csr():
    return CSRGraph.from_edges(
        [(0, 1), (1, 2), (2, 0), (2, 3)], num_vertices=4,
        weights=[1.0, 2.0, 3.0, 4.0],
    )


class TestStructure:
    def test_from_csr_preserves_edges(self):
        csr = rmat(scale=7, edge_factor=5, seed=70, weighted=True)
        dynamic = DynamicGraph.from_csr(csr)
        assert dynamic.edge_set() == csr.edge_set()
        assert dynamic.num_edges == csr.num_edges
        assert np.array_equal(dynamic.out_degrees(), csr.out_degrees())
        assert np.array_equal(dynamic.in_degrees(), csr.in_degrees())

    def test_insert_and_delete(self):
        graph = DynamicGraph.from_csr(base_csr())
        assert graph.insert_edge(3, 1, 5.0)
        assert graph.has_edge(3, 1)
        assert graph.edge_weight(3, 1) == 5.0
        assert graph.num_edges == 5
        assert graph.delete_edge(3, 1) == 5.0
        assert not graph.has_edge(3, 1)
        assert graph.num_edges == 4

    def test_duplicate_insert_refused(self):
        graph = DynamicGraph.from_csr(base_csr())
        assert not graph.insert_edge(0, 1, 9.0)
        assert graph.edge_weight(0, 1) == 1.0

    def test_delete_absent_returns_none(self):
        graph = DynamicGraph.from_csr(base_csr())
        assert graph.delete_edge(3, 0) is None

    def test_overflow_triggers_repack(self):
        graph = DynamicGraph.from_csr(base_csr())
        for target in range(4, 40):
            graph.grow_vertices(target + 1)
            graph.insert_edge(0, target, 1.0)
        assert graph.repacks > 0
        assert graph.out_degree(0) == 1 + 36

    def test_both_directions_stay_consistent(self):
        graph = DynamicGraph.from_csr(base_csr())
        graph.insert_edge(3, 1, 2.0)
        graph.delete_edge(2, 0)
        src_out = sorted(zip(*[arr.tolist()
                               for arr in graph.all_edges()[:2]]))
        in_src, in_dst, _ = graph.in_edges_of(
            np.arange(graph.num_vertices)
        )
        src_in = sorted(zip(in_src.tolist(), in_dst.tolist()))
        assert src_out == src_in

    def test_gathers_match_csr(self):
        csr = rmat(scale=7, edge_factor=5, seed=71, weighted=True)
        dynamic = DynamicGraph.from_csr(csr)
        subset = np.array([0, 5, 17])
        c_src, c_dst, c_w = csr.out_edges_of(subset)
        d_src, d_dst, d_w = dynamic.out_edges_of(subset)
        assert sorted(zip(c_src.tolist(), c_dst.tolist(), c_w.tolist())) \
            == sorted(zip(d_src.tolist(), d_dst.tolist(), d_w.tolist()))

    def test_weight_sum_caches_invalidate(self):
        graph = DynamicGraph.from_csr(base_csr())
        before = graph.out_weight_sums()[0]
        graph.insert_edge(0, 3, 10.0)
        assert graph.out_weight_sums()[0] == before + 10.0
        before_in = graph.in_weight_sums()[1]
        graph.delete_edge(0, 1)
        assert graph.in_weight_sums()[1] == before_in - 1.0

    def test_to_csr_roundtrip(self):
        graph = DynamicGraph.from_csr(base_csr())
        graph.insert_edge(3, 0, 1.5)
        csr = graph.to_csr()
        assert csr.edge_set() == graph.edge_set()


class TestStreamingAdapter:
    def test_mutation_result_fields(self):
        stream = DynamicStreamingGraph(base_csr())
        result = stream.apply_batch(
            MutationBatch.from_edges(additions=[(3, 0), (0, 1)],
                                     deletions=[(1, 2), (0, 3)])
        )
        assert result.add_src.tolist() == [3]
        assert result.skipped_additions == 1
        assert result.del_src.tolist() == [1]
        assert result.del_weight.tolist() == [2.0]
        assert result.skipped_deletions == 1
        assert result.out_changed_vertices().tolist() == [1, 3]
        assert result.in_changed_vertices().tolist() == [0, 2]

    def test_frozen_old_params(self):
        stream = DynamicStreamingGraph(base_csr())
        result = stream.apply_batch(
            MutationBatch.from_edges(additions=[(0, 2)])
        )
        old = result.old_graph
        assert isinstance(old, FrozenGraphParams)
        assert old.out_degrees()[0] == 1  # pre-mutation degree
        assert stream.graph.out_degrees()[0] == 2

    def test_growth(self):
        stream = DynamicStreamingGraph(base_csr())
        result = stream.apply_batch(
            MutationBatch.from_edges(additions=[(0, 7)])
        )
        assert result.grew()
        assert stream.num_vertices == 8
        assert 7 in result.in_changed_vertices().tolist()

    def test_added_edge_mask(self):
        stream = DynamicStreamingGraph(base_csr())
        result = stream.apply_batch(
            MutationBatch.from_edges(additions=[(3, 0)])
        )
        mask = result.added_edge_mask()
        src, slots = stream.graph.out_edge_slots(np.array([3]))
        flagged = mask[slots]
        targets = stream.graph.out_targets[slots]
        assert flagged[targets == 0].all()
        assert not flagged[targets != 0].any()


class TestEngineIntegration:
    @pytest.mark.parametrize("factory", [
        pytest.param(lambda: PageRank(), id="pagerank"),
        pytest.param(lambda: CoEM(), id="coem"),
        pytest.param(lambda: WeightedPageRank(), id="weighted_pagerank"),
    ])
    def test_refinement_exact_on_dynamic_backend(self, factory, rng):
        graph = rmat(scale=8, edge_factor=6, seed=72, weighted=True)
        engine = GraphBoltEngine(
            factory(), num_iterations=10,
            streaming_factory=DynamicStreamingGraph,
        )
        engine.run(graph)
        for _ in range(4):
            batch = make_random_batch(engine.graph, rng, 15, 15)
            engine.apply_mutations(batch)
        truth = LigraEngine(factory()).run(engine.graph.to_csr(), 10)
        assert np.allclose(engine.values, truth, atol=1e-7)


@st.composite
def mutation_trace(draw):
    num_vertices = draw(st.integers(2, 10))
    def edge():
        return st.tuples(
            st.integers(0, num_vertices - 1),
            st.integers(0, num_vertices - 1),
        ).filter(lambda e: e[0] != e[1])
    edges = draw(st.lists(edge(), max_size=20))
    ops = draw(
        st.lists(st.tuples(st.booleans(), edge()), max_size=40)
    )
    return num_vertices, edges, ops


class TestAgainstSetModel:
    @given(mutation_trace())
    @settings(max_examples=60, deadline=None)
    def test_matches_python_set_semantics(self, data):
        num_vertices, edges, ops = data
        initial = sorted(set(edges))
        csr = CSRGraph.from_edges(initial, num_vertices=num_vertices)
        graph = DynamicGraph.from_csr(csr)
        model = set(initial)
        for is_insert, (u, v) in ops:
            if is_insert:
                inserted = graph.insert_edge(u, v, 1.0)
                assert inserted == ((u, v) not in model)
                model.add((u, v))
            else:
                weight = graph.delete_edge(u, v)
                assert (weight is not None) == ((u, v) in model)
                model.discard((u, v))
            assert graph.edge_set() == model
            assert graph.num_edges == len(model)
