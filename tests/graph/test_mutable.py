"""Unit and property tests for the streaming graph's batch application."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.mutable import StreamingGraph
from repro.graph.mutation import MutationBatch


def base_graph():
    return CSRGraph.from_edges(
        [(0, 1), (1, 2), (2, 0), (2, 3)], num_vertices=4,
        weights=[1.0, 2.0, 3.0, 4.0],
    )


class TestEdgePositions:
    """Regression tests for the vectorised CSR slot lookup."""

    def _expected(self, graph, src, dst):
        pairs = {(int(s), int(d)): i
                 for i, (s, d) in enumerate(zip(*graph.all_edges()[:2]))}
        return [pairs.get((int(s), int(d)), -1) for s, d in zip(src, dst)]

    def test_duplicate_pairs_resolve_to_same_slot(self):
        graph = base_graph()
        src = np.array([1, 0, 1, 2, 1], dtype=np.int64)
        dst = np.array([2, 1, 2, 3, 2], dtype=np.int64)
        positions = StreamingGraph._edge_positions(graph, src, dst)
        assert positions.tolist() == self._expected(graph, src, dst)
        assert positions[0] == positions[2] == positions[4]

    def test_missing_edges_report_minus_one(self):
        graph = base_graph()
        src = np.array([0, 3, 1, 2], dtype=np.int64)
        dst = np.array([2, 1, 2, 0], dtype=np.int64)
        positions = StreamingGraph._edge_positions(graph, src, dst)
        assert positions.tolist() == self._expected(graph, src, dst)
        assert positions[0] == -1 and positions[1] == -1

    def test_out_of_range_endpoints_are_absent(self):
        # dst >= V must not alias the key of a different in-range pair:
        # with V=4, (0, 5) would collide with (1, 1) if unmasked.
        graph = CSRGraph.from_edges([(1, 1), (2, 0)], num_vertices=4)
        src = np.array([0, 1, -1, 2, 7], dtype=np.int64)
        dst = np.array([5, 1, 0, -2, 0], dtype=np.int64)
        positions = StreamingGraph._edge_positions(graph, src, dst)
        assert positions.tolist() == [-1, 0, -1, -1, -1]

    def test_probe_beyond_last_key(self):
        graph = base_graph()
        positions = StreamingGraph._edge_positions(
            graph, np.array([3]), np.array([3])
        )
        assert positions.tolist() == [-1]

    def test_empty_query_and_empty_graph(self):
        graph = base_graph()
        empty = StreamingGraph._edge_positions(
            graph, np.array([], dtype=np.int64), np.array([], dtype=np.int64)
        )
        assert empty.size == 0
        edgeless = CSRGraph.from_edges([], num_vertices=3)
        positions = StreamingGraph._edge_positions(
            edgeless, np.array([0, 1]), np.array([1, 2])
        )
        assert positions.tolist() == [-1, -1]

    def test_matches_bruteforce_on_random_batches(self):
        rng = np.random.default_rng(17)
        edges = {(int(s), int(d))
                 for s, d in zip(rng.integers(0, 12, 40),
                                 rng.integers(0, 12, 40))}
        graph = CSRGraph.from_edges(sorted(edges), num_vertices=12)
        src = rng.integers(-2, 14, 200)
        dst = rng.integers(-2, 14, 200)
        positions = StreamingGraph._edge_positions(graph, src, dst)
        assert positions.tolist() == self._expected(graph, src, dst)


class TestApplyBatch:
    def test_addition(self):
        stream = StreamingGraph(base_graph())
        result = stream.apply_batch(
            MutationBatch.from_edges(additions=[(3, 0)])
        )
        assert stream.graph.has_edge(3, 0)
        assert result.add_src.tolist() == [3]
        assert result.skipped_additions == 0

    def test_deletion(self):
        stream = StreamingGraph(base_graph())
        result = stream.apply_batch(
            MutationBatch.from_edges(deletions=[(1, 2)])
        )
        assert not stream.graph.has_edge(1, 2)
        assert result.del_src.tolist() == [1]
        assert result.del_weight.tolist() == [2.0]

    def test_duplicate_addition_skipped(self):
        stream = StreamingGraph(base_graph())
        result = stream.apply_batch(
            MutationBatch.from_edges(additions=[(0, 1), (3, 0)])
        )
        assert result.skipped_additions == 1
        assert result.add_src.tolist() == [3]
        assert stream.graph.num_edges == 5

    def test_absent_deletion_skipped(self):
        stream = StreamingGraph(base_graph())
        result = stream.apply_batch(
            MutationBatch.from_edges(deletions=[(0, 3), (1, 2)])
        )
        assert result.skipped_deletions == 1
        assert stream.graph.num_edges == 3

    def test_delete_then_readd_replaces_weight(self):
        stream = StreamingGraph(base_graph())
        batch = MutationBatch.from_edges(
            additions=[(0, 1)], deletions=[(0, 1)], add_weights=[9.0]
        )
        result = stream.apply_batch(batch)
        assert stream.graph.edge_weight(0, 1) == 9.0
        assert result.add_src.tolist() == [0]
        assert result.del_src.tolist() == [0]

    def test_delete_and_add_of_absent_edge_is_plain_add(self):
        stream = StreamingGraph(base_graph())
        batch = MutationBatch.from_edges(
            additions=[(3, 1)], deletions=[(3, 1)]
        )
        result = stream.apply_batch(batch)
        assert stream.graph.has_edge(3, 1)
        assert result.skipped_deletions == 1
        assert result.del_src.size == 0

    def test_previous_snapshot_retained(self):
        stream = StreamingGraph(base_graph())
        assert stream.previous is None
        old = stream.graph
        stream.apply_batch(MutationBatch.from_edges(additions=[(3, 1)]))
        assert stream.previous is old
        assert old.num_edges == 4

    def test_vertex_growth_implicit(self):
        stream = StreamingGraph(base_graph())
        result = stream.apply_batch(
            MutationBatch.from_edges(additions=[(0, 6)])
        )
        assert stream.num_vertices == 7
        assert result.grew()

    def test_vertex_growth_explicit(self):
        stream = StreamingGraph(base_graph())
        stream.apply_batch(MutationBatch(grow_to=9))
        assert stream.num_vertices == 9
        assert stream.num_edges == 4

    def test_empty_batch(self):
        stream = StreamingGraph(base_graph())
        result = stream.apply_batch(MutationBatch.empty())
        assert result.num_applied == 0
        assert stream.num_edges == 4

    def test_batches_applied_counter(self):
        stream = StreamingGraph(base_graph())
        stream.apply_batch(MutationBatch.empty())
        stream.apply_batch(MutationBatch.empty())
        assert stream.batches_applied == 2


class TestMutationResult:
    def test_out_changed_vertices(self):
        stream = StreamingGraph(base_graph())
        result = stream.apply_batch(
            MutationBatch.from_edges(additions=[(3, 0)], deletions=[(1, 2)])
        )
        assert result.out_changed_vertices().tolist() == [1, 3]

    def test_in_changed_vertices(self):
        stream = StreamingGraph(base_graph())
        result = stream.apply_batch(
            MutationBatch.from_edges(additions=[(3, 0)], deletions=[(1, 2)])
        )
        assert result.in_changed_vertices().tolist() == [0, 2]

    def test_changed_vertices_include_new_ids(self):
        stream = StreamingGraph(base_graph())
        result = stream.apply_batch(
            MutationBatch.from_edges(additions=[(0, 5)])
        )
        assert 4 in result.out_changed_vertices().tolist()
        assert 5 in result.in_changed_vertices().tolist()

    def test_added_edge_mask(self):
        stream = StreamingGraph(base_graph())
        result = stream.apply_batch(
            MutationBatch.from_edges(additions=[(3, 0), (0, 2)])
        )
        mask = result.added_edge_mask()
        graph = stream.graph
        assert mask.sum() == 2
        src, dst, _ = graph.all_edges()
        flagged = set(zip(src[mask].tolist(), dst[mask].tolist()))
        assert flagged == {(3, 0), (0, 2)}


@st.composite
def graph_and_batches(draw):
    num_vertices = draw(st.integers(2, 12))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, num_vertices - 1),
                st.integers(0, num_vertices - 1),
            ).filter(lambda e: e[0] != e[1]),
            max_size=30,
        )
    )
    batches = draw(
        st.lists(
            st.tuples(
                st.lists(
                    st.tuples(
                        st.integers(0, num_vertices - 1),
                        st.integers(0, num_vertices - 1),
                    ),
                    max_size=8,
                ),
                st.lists(
                    st.tuples(
                        st.integers(0, num_vertices - 1),
                        st.integers(0, num_vertices - 1),
                    ),
                    max_size=8,
                ),
            ),
            max_size=4,
        )
    )
    return num_vertices, edges, batches


class TestAgainstSetModel:
    @given(graph_and_batches())
    @settings(max_examples=60, deadline=None)
    def test_matches_python_set_semantics(self, data):
        num_vertices, edges, batches = data
        graph = CSRGraph.from_edges(set(edges), num_vertices=num_vertices)
        stream = StreamingGraph(graph)
        model = set(graph.edge_set())
        for additions, deletions in batches:
            batch = MutationBatch.from_edges(additions=additions,
                                             deletions=deletions)
            stream.apply_batch(batch)
            for edge in batch.deletions():
                model.discard(edge)
            for src, dst, _ in batch.additions():
                model.add((src, dst))
            assert stream.graph.edge_set() == model
