"""Tests for the GraphIn-style tag-and-recompute corrector."""

import numpy as np
import pytest

from repro.algorithms import LabelPropagation, PageRank, SSSP
from repro.core.engine import GraphBoltEngine
from repro.core.tagreset import TagResetEngine
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat
from repro.graph.mutation import MutationBatch
from repro.ligra.engine import LigraEngine
from tests.conftest import make_random_batch

FACTORIES = [
    pytest.param(lambda: PageRank(), 8, id="pagerank"),
    pytest.param(lambda: LabelPropagation(num_labels=3), 8,
                 id="label_propagation"),
    pytest.param(lambda: SSSP(source=0), 25, id="sssp"),
]


class TestCorrectness:
    @pytest.mark.parametrize("factory,iterations", FACTORIES)
    def test_equals_from_scratch(self, factory, iterations, rng):
        graph = rmat(scale=7, edge_factor=5, seed=120, weighted=True)
        engine = TagResetEngine(factory(), num_iterations=iterations)
        engine.run(graph)
        for _ in range(3):
            batch = make_random_batch(engine.graph, rng, 10, 10)
            values = engine.apply_mutations(batch)
            truth = LigraEngine(factory()).run(engine.graph, iterations)
            filled_v = np.where(np.isinf(values), -1.0, values)
            filled_t = np.where(np.isinf(truth), -1.0, truth)
            assert np.allclose(filled_v, filled_t, atol=1e-6)

    def test_requires_run_first(self):
        engine = TagResetEngine(PageRank())
        with pytest.raises(RuntimeError):
            engine.apply_mutations(MutationBatch.empty())

    def test_vertex_growth(self, rng):
        graph = rmat(scale=6, edge_factor=4, seed=121, weighted=True)
        engine = TagResetEngine(PageRank(), num_iterations=6)
        engine.run(graph)
        grown = graph.num_vertices + 2
        values = engine.apply_mutations(MutationBatch.from_edges(
            additions=[(0, grown - 1)], grow_to=grown,
        ))
        truth = LigraEngine(PageRank()).run(engine.graph, 6)
        assert np.allclose(values, truth, atol=1e-8)


class TestWastefulness:
    """The paper's section 2.2 point, quantified as a test."""

    def test_tags_majority_and_outworks_graphbolt(self, rng):
        graph = rmat(scale=9, edge_factor=8, seed=122, weighted=True)
        factory = lambda: LabelPropagation(num_labels=3, seed_every=3,
                                           tolerance=1e-3)
        tag_engine = TagResetEngine(factory(), num_iterations=10)
        tag_engine.run(graph)
        bolt_engine = GraphBoltEngine(factory(), num_iterations=10)
        bolt_engine.run(graph)

        batch = make_random_batch(graph, rng, 3, 3)
        tag_before = tag_engine.metrics.snapshot()
        tag_engine.apply_mutations(batch)
        tag_edges = tag_engine.metrics.delta_since(
            tag_before
        ).edge_computations
        bolt_before = bolt_engine.metrics.snapshot()
        bolt_engine.apply_mutations(batch)
        bolt_edges = bolt_engine.metrics.delta_since(
            bolt_before
        ).edge_computations

        # Majority of the graph is tagged by a 6-mutation batch...
        assert tag_engine.last_tagged > graph.num_vertices * 0.5
        # ...so tag-reset performs far more edge work than refinement.
        assert tag_edges > bolt_edges * 3, (tag_edges, bolt_edges)
        # Both remain correct within the 1e-3 scheduling tolerance this
        # bench-style configuration runs at.
        truth = LigraEngine(factory()).run(bolt_engine.graph, 10)
        assert np.allclose(tag_engine.values, truth, atol=5e-3)
        assert np.allclose(bolt_engine.values, truth, atol=5e-3)

    def test_local_mutation_on_sparse_chain_is_cheap(self):
        # Fairness check: where tagging IS local, tag-reset is fine.
        edges = [(i, i + 1) for i in range(50)]
        graph = CSRGraph.from_edges(edges, num_vertices=51)
        engine = TagResetEngine(PageRank(), num_iterations=5)
        engine.run(graph)
        engine.apply_mutations(MutationBatch.from_edges(
            deletions=[(40, 41)]
        ))
        # Tags: endpoints + 5 hops downstream of vertex 41's region.
        assert engine.last_tagged <= 10
        truth = LigraEngine(PageRank()).run(engine.graph, 5)
        assert np.allclose(engine.values, truth, atol=1e-9)
