"""Unit tests for dependency history storage and rolling replay."""

import numpy as np
import pytest

from repro.core.history import DependencyHistory


def make_history():
    initial = np.array([1.0, 1.0, 1.0])
    identity = np.zeros(3)
    history = DependencyHistory(initial, identity)
    # Iteration 1: vertices 0, 2 change aggregation; 0 changes value.
    history.record(np.array([0, 2]), np.array([5.0, 7.0]),
                   np.array([0]), np.array([2.0]))
    # Iteration 2: vertex 1 changes both.
    history.record(np.array([1]), np.array([3.0]),
                   np.array([1]), np.array([4.0]))
    return history


class TestStorage:
    def test_horizon(self):
        assert make_history().horizon == 2

    def test_nbytes_counts_records_only(self):
        history = DependencyHistory(np.ones(100), np.zeros(100))
        assert history.nbytes == 0
        history.record(np.array([0]), np.array([1.0]),
                       np.array([0]), np.array([1.0]))
        assert history.nbytes == 32  # two int64 + two float64

    def test_stored_entries(self):
        assert make_history().stored_entries() == 3

    def test_values_are_copied(self):
        initial = np.ones(2)
        history = DependencyHistory(initial, np.zeros(2))
        g_vals = np.array([9.0])
        history.record(np.array([0]), g_vals, np.array([0]), g_vals)
        g_vals[0] = -1.0
        assert history.records[0].g_values[0] == 9.0
        initial[0] = -1.0
        assert history.initial_values[0] == 1.0

    def test_changed_frontier(self):
        history = make_history()
        assert history.changed_frontier(1).tolist() == [0]
        assert history.changed_frontier(2).tolist() == [1]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DependencyHistory(np.ones(3), np.zeros(4))


class TestRollingReplay:
    def test_replay_values(self):
        roll = make_history().rolling()
        assert roll.iteration == 0
        assert roll.c.tolist() == [1.0, 1.0, 1.0]

        roll.advance()
        assert roll.g.tolist() == [5.0, 0.0, 7.0]
        assert roll.c.tolist() == [2.0, 1.0, 1.0]
        assert roll.c_prev.tolist() == [1.0, 1.0, 1.0]

        roll.advance()
        assert roll.g.tolist() == [5.0, 3.0, 7.0]
        assert roll.c.tolist() == [2.0, 4.0, 1.0]
        assert roll.c_prev.tolist() == [2.0, 1.0, 1.0]

    def test_advance_past_horizon_raises(self):
        roll = make_history().rolling()
        roll.advance()
        roll.advance()
        with pytest.raises(IndexError):
            roll.advance()

    def test_extended_replay(self):
        history = make_history()
        roll = history.rolling(
            extended_initial=np.array([1.0, 1.0, 1.0, 9.0]),
            extended_identity=np.zeros(4),
        )
        roll.advance()
        # New vertex never changes during replay.
        assert roll.c.tolist() == [2.0, 1.0, 1.0, 9.0]
        assert roll.g[3] == 0.0

    def test_extension_cannot_shrink(self):
        with pytest.raises(ValueError):
            make_history().rolling(extended_initial=np.ones(2),
                                   extended_identity=np.zeros(2))

    def test_replay_does_not_mutate_history(self):
        history = make_history()
        roll = history.rolling()
        roll.advance()
        roll.c[0] = 123.0
        roll2 = history.rolling()
        roll2.advance()
        assert roll2.c[0] == 2.0

    def test_vector_values(self):
        initial = np.ones((2, 3))
        identity = np.zeros((2, 3))
        history = DependencyHistory(initial, identity)
        history.record(np.array([1]), np.array([[1.0, 2.0, 3.0]]),
                       np.array([1]), np.array([[4.0, 5.0, 6.0]]))
        roll = history.rolling()
        roll.advance()
        assert roll.g[1].tolist() == [1.0, 2.0, 3.0]
        assert roll.c[1].tolist() == [4.0, 5.0, 6.0]
