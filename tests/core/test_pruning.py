"""Unit tests for pruning policies."""

import pytest

from repro.core.pruning import PruningPolicy


class TestValidation:
    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            PruningPolicy(horizon=-1)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            PruningPolicy(adaptive_fraction=1.5)
        with pytest.raises(ValueError):
            PruningPolicy(adaptive_fraction=-0.1)

    def test_track_everything(self):
        policy = PruningPolicy.track_everything()
        assert policy.horizon is None
        assert policy.adaptive_fraction is None
        assert policy.vertical


class TestHorizontal:
    def test_fixed_horizon(self):
        policy = PruningPolicy(horizon=3)
        assert policy.should_track(3, 100, 1000, False)
        assert not policy.should_track(4, 100, 1000, False)

    def test_horizon_zero_tracks_nothing(self):
        policy = PruningPolicy(horizon=0)
        assert not policy.should_track(1, 100, 1000, False)

    def test_adaptive_cutoff(self):
        policy = PruningPolicy(adaptive_fraction=0.1)
        assert policy.should_track(2, 500, 1000, False)
        assert not policy.should_track(2, 50, 1000, False)

    def test_tracking_never_resumes(self):
        policy = PruningPolicy(adaptive_fraction=0.1)
        assert not policy.should_track(5, 900, 1000, True)

    def test_no_pruning_tracks_forever(self):
        policy = PruningPolicy.track_everything()
        assert policy.should_track(10_000, 0, 1000, False)

    def test_empty_graph_edge_case(self):
        policy = PruningPolicy(adaptive_fraction=0.5)
        assert policy.should_track(2, 0, 0, False)
