"""Unit and property tests for the aggregation algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import (
    CountAggregation,
    LogProductAggregation,
    MaxAggregation,
    MinAggregation,
    ProductAggregation,
    SumAggregation,
)


class TestSum:
    def setup_method(self):
        self.agg = SumAggregation()

    def test_identity(self):
        assert self.agg.identity_value() == 0.0
        assert np.all(self.agg.identity(4) == 0.0)
        assert self.agg.identity(3, (2,)).shape == (3, 2)

    def test_scatter_accumulates_duplicates(self):
        aggregate = self.agg.identity(3)
        self.agg.scatter(aggregate, np.array([1, 1, 2]),
                         np.array([1.0, 2.0, 5.0]))
        assert aggregate.tolist() == [0.0, 3.0, 5.0]

    def test_retract_undoes_scatter(self):
        aggregate = self.agg.identity(2)
        dst = np.array([0, 1, 0])
        contribs = np.array([1.0, 2.0, 3.0])
        self.agg.scatter(aggregate, dst, contribs)
        self.agg.scatter_retract(aggregate, dst, contribs)
        assert np.allclose(aggregate, 0.0)

    def test_delta(self):
        assert self.agg.delta(np.array([5.0]), np.array([2.0])) == 3.0

    def test_scatter_delta_equals_retract_then_scatter(self):
        a = self.agg.identity(3)
        b = self.agg.identity(3)
        a += 7.0
        b += 7.0
        dst = np.array([0, 2])
        old = np.array([1.0, 2.0])
        new = np.array([4.0, 8.0])
        self.agg.scatter_delta(a, dst, new, old)
        self.agg.scatter_retract(b, dst, old)
        self.agg.scatter(b, dst, new)
        assert np.allclose(a, b)

    def test_reduce(self):
        assert self.agg.reduce(np.array([1.0, 2.0, 3.0])) == 6.0

    def test_vector_scatter(self):
        aggregate = self.agg.identity(2, (3,))
        self.agg.scatter(aggregate, np.array([1, 1]),
                         np.array([[1.0, 0.0, 2.0], [1.0, 1.0, 1.0]]))
        assert aggregate[1].tolist() == [2.0, 1.0, 3.0]

    def test_name(self):
        assert self.agg.name == "sum"
        assert CountAggregation().name == "count"


class TestProduct:
    def setup_method(self):
        self.agg = ProductAggregation()

    def test_identity(self):
        assert self.agg.identity_value() == 1.0

    def test_scatter_multiplies(self):
        aggregate = self.agg.identity(2)
        self.agg.scatter(aggregate, np.array([0, 0]), np.array([2.0, 3.0]))
        assert aggregate[0] == 6.0

    def test_retract_divides(self):
        aggregate = self.agg.identity(1)
        self.agg.scatter(aggregate, np.array([0]), np.array([8.0]))
        self.agg.scatter_retract(aggregate, np.array([0]), np.array([2.0]))
        assert aggregate[0] == 4.0

    def test_delta_is_ratio(self):
        assert self.agg.delta(np.array([6.0]), np.array([2.0])) == 3.0

    def test_reduce(self):
        assert self.agg.reduce(np.array([2.0, 5.0])) == 10.0


class TestLogProduct:
    def test_semantics_match_product_in_log_space(self):
        product = ProductAggregation()
        logprod = LogProductAggregation()
        values = np.array([2.0, 0.5, 3.0])
        dst = np.zeros(3, dtype=np.int64)

        direct = product.identity(1)
        product.scatter(direct, dst, values)
        logged = logprod.identity(1)
        logprod.scatter(logged, dst, np.log(values))
        assert np.allclose(np.exp(logged), direct)

    def test_retract(self):
        agg = LogProductAggregation()
        aggregate = agg.identity(1)
        agg.scatter(aggregate, np.array([0]), np.array([1.5]))
        agg.scatter_retract(aggregate, np.array([0]), np.array([1.5]))
        assert np.allclose(aggregate, 0.0)

    def test_deep_products_stay_finite(self):
        # 100k multiplications of 0.9 underflow directly but not in logs.
        agg = LogProductAggregation()
        aggregate = agg.identity(1)
        contribs = np.full(100_000, np.log(0.9))
        agg.scatter(aggregate, np.zeros(100_000, dtype=np.int64), contribs)
        assert np.isfinite(aggregate[0])


class TestMinMax:
    def test_min_scatter(self):
        agg = MinAggregation()
        aggregate = agg.identity(2)
        assert np.all(np.isinf(aggregate))
        agg.scatter(aggregate, np.array([0, 0, 1]),
                    np.array([3.0, 1.0, 2.0]))
        assert aggregate.tolist() == [1.0, 2.0]

    def test_max_scatter(self):
        agg = MaxAggregation()
        aggregate = agg.identity(1)
        agg.scatter(aggregate, np.array([0, 0]), np.array([3.0, 7.0]))
        assert aggregate[0] == 7.0

    def test_non_decomposable_flags(self):
        assert not MinAggregation().decomposable
        assert not MaxAggregation().decomposable
        assert SumAggregation().decomposable
        assert ProductAggregation().decomposable

    def test_retract_raises(self):
        with pytest.raises(NotImplementedError, match="non-decomposable"):
            MinAggregation().scatter_retract(
                np.zeros(1), np.array([0]), np.array([1.0])
            )

    def test_delta_raises(self):
        with pytest.raises(NotImplementedError):
            MaxAggregation().delta(np.array([1.0]), np.array([2.0]))

    def test_reduce(self):
        assert MinAggregation().reduce(np.array([4.0, 2.0])) == 2.0
        assert MaxAggregation().reduce(np.array([4.0, 2.0])) == 4.0


class TestAlgebraicLaws:
    @given(
        st.lists(st.floats(-100, 100), min_size=1, max_size=30),
        st.integers(0, 1_000_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_sum_scatter_is_order_independent(self, values, seed):
        agg = SumAggregation()
        contribs = np.array(values)
        dst = np.zeros(len(values), dtype=np.int64)
        forward = agg.identity(1)
        agg.scatter(forward, dst, contribs)
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(values))
        shuffled = agg.identity(1)
        agg.scatter(shuffled, dst, contribs[order])
        assert np.allclose(forward, shuffled)

    @given(st.lists(st.floats(0.1, 10), min_size=1, max_size=20))
    @settings(max_examples=80, deadline=None)
    def test_sum_retraction_inverts(self, values):
        agg = SumAggregation()
        contribs = np.array(values)
        dst = np.zeros(len(values), dtype=np.int64)
        aggregate = agg.identity(1)
        agg.scatter(aggregate, dst, contribs)
        agg.scatter_retract(aggregate, dst, contribs)
        assert np.allclose(aggregate, 0.0, atol=1e-9)

    @given(st.lists(st.floats(0.5, 2.0), min_size=1, max_size=20))
    @settings(max_examples=80, deadline=None)
    def test_log_product_retraction_inverts(self, values):
        agg = LogProductAggregation()
        contribs = np.log(np.array(values))
        dst = np.zeros(len(values), dtype=np.int64)
        aggregate = agg.identity(1)
        agg.scatter(aggregate, dst, contribs)
        agg.scatter_retract(aggregate, dst, contribs)
        assert np.allclose(aggregate, 0.0, atol=1e-9)
