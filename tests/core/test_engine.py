"""Unit tests for GraphBoltEngine lifecycle, strategies and accounting."""

import numpy as np
import pytest

from repro.algorithms import LabelPropagation, PageRank, SSSP
from repro.core.engine import GraphBoltEngine
from repro.core.pruning import PruningPolicy
from repro.graph.generators import rmat
from repro.graph.mutation import MutationBatch
from repro.ligra.engine import LigraEngine
from repro.runtime.validation import count_exceeding
from tests.conftest import make_random_batch


@pytest.fixture
def graph():
    return rmat(scale=8, edge_factor=6, seed=4, weighted=True)


class TestLifecycle:
    def test_requires_run_before_use(self, graph):
        engine = GraphBoltEngine(PageRank())
        with pytest.raises(RuntimeError, match="run"):
            _ = engine.values
        with pytest.raises(RuntimeError):
            engine.apply_mutations(MutationBatch.empty())
        with pytest.raises(RuntimeError):
            engine.memory_report()

    def test_run_returns_values(self, graph):
        engine = GraphBoltEngine(PageRank(), num_iterations=5)
        values = engine.run(graph)
        assert values.shape == (graph.num_vertices,)
        assert values is engine.values

    def test_invalid_strategy(self):
        with pytest.raises(ValueError):
            GraphBoltEngine(PageRank(), strategy="bogus")

    def test_graph_property_tracks_mutations(self, graph, rng):
        engine = GraphBoltEngine(PageRank(), num_iterations=5)
        engine.run(graph)
        assert engine.graph is graph
        engine.apply_mutations(make_random_batch(graph, rng, 5, 0))
        assert engine.graph is not graph

    def test_repr(self, graph):
        engine = GraphBoltEngine(PageRank())
        assert "ran=False" in repr(engine)
        engine.run(graph)
        assert "ran=True" in repr(engine)


class TestTracking:
    def test_history_horizon_matches_iterations(self, graph):
        engine = GraphBoltEngine(PageRank(), num_iterations=6)
        engine.run(graph)
        assert engine.history.horizon == 6

    def test_fixed_horizon_caps_tracking(self, graph):
        engine = GraphBoltEngine(PageRank(), num_iterations=8,
                                 pruning=PruningPolicy(horizon=3))
        engine.run(graph)
        assert engine.history.horizon == 3

    def test_adaptive_pruning_stops_tracking(self, graph):
        # SSSP's frontier collapses quickly; adaptive pruning should cut
        # the horizon well short of the iteration count.
        engine = GraphBoltEngine(SSSP(source=0), num_iterations=50,
                                 pruning=PruningPolicy(adaptive_fraction=0.2))
        engine.run(graph)
        assert 1 <= engine.history.horizon < 10

    def test_vertical_pruning_off_stores_dense(self, graph):
        sparse = GraphBoltEngine(
            LabelPropagation(tolerance=1e-3, seed_every=3),
            num_iterations=8,
        )
        sparse.run(graph)
        dense = GraphBoltEngine(
            LabelPropagation(tolerance=1e-3, seed_every=3),
            num_iterations=8,
            pruning=PruningPolicy(vertical=False),
        )
        dense.run(graph)
        assert dense.history.nbytes > sparse.history.nbytes
        for record in dense.history.records:
            assert record.g_idx.size == graph.num_vertices

    def test_naive_strategy_tracks_nothing(self, graph):
        engine = GraphBoltEngine(PageRank(), num_iterations=5,
                                 strategy="naive")
        engine.run(graph)
        assert engine.history.horizon == 0


class TestNaiveStrategy:
    def test_naive_reuse_produces_incorrect_results(self, graph, rng):
        engine = GraphBoltEngine(
            LabelPropagation(num_labels=5, seed_every=10),
            num_iterations=10, strategy="naive",
        )
        engine.run(graph)
        for _ in range(3):
            values = engine.apply_mutations(
                make_random_batch(engine.graph, rng, 30, 30)
            )
        truth = LigraEngine(
            LabelPropagation(num_labels=5, seed_every=10)
        ).run(engine.graph, 10)
        assert count_exceeding(values, truth, 0.01) > 0

    def test_naive_handles_growth(self, graph, rng):
        engine = GraphBoltEngine(PageRank(), num_iterations=5,
                                 strategy="naive")
        engine.run(graph)
        grown = graph.num_vertices + 3
        values = engine.apply_mutations(
            MutationBatch.from_edges(additions=[(0, grown - 1)],
                                     grow_to=grown)
        )
        assert values.shape == (grown,)


class TestMemoryReport:
    def test_dependency_bytes_positive(self, graph):
        engine = GraphBoltEngine(PageRank(), num_iterations=5)
        engine.run(graph)
        report = engine.memory_report()
        assert report.dependency_bytes > 0
        assert report.baseline_bytes > graph.nbytes

    def test_graph_exclusion(self, graph):
        engine = GraphBoltEngine(PageRank(), num_iterations=5)
        engine.run(graph)
        with_graph = engine.memory_report(include_graph=True)
        without = engine.memory_report(include_graph=False)
        assert with_graph.baseline_bytes - without.baseline_bytes == (
            graph.nbytes
        )
        assert without.overhead_percent > with_graph.overhead_percent

    def test_first_iteration_only(self, graph):
        engine = GraphBoltEngine(PageRank(), num_iterations=5)
        engine.run(graph)
        worst_case = engine.memory_report(first_iteration_only=True)
        full = engine.memory_report(first_iteration_only=False)
        assert worst_case.dependency_bytes == engine.history.records[0].nbytes
        assert worst_case.dependency_bytes <= full.dependency_bytes

    def test_zero_baseline_edge_cases(self):
        from repro.runtime.metrics import MemoryReport

        assert MemoryReport(0, 0).overhead_fraction == 0.0
        assert MemoryReport(0, 10).overhead_fraction == float("inf")


class TestMetricsPhases:
    def test_phase_timers_populated(self, graph, rng):
        engine = GraphBoltEngine(PageRank(), num_iterations=5)
        engine.run(graph)
        engine.apply_mutations(make_random_batch(engine.graph, rng, 5, 5))
        phases = engine.metrics.phase_seconds
        for phase in ("initial_run", "adjust_structure", "refine", "hybrid"):
            assert phase in phases

    def test_refinement_iterations_counted(self, graph, rng):
        engine = GraphBoltEngine(PageRank(), num_iterations=5)
        engine.run(graph)
        engine.apply_mutations(make_random_batch(engine.graph, rng, 5, 5))
        assert engine.metrics.refinement_iterations == 5


class TestConvergenceNaiveCombo:
    def test_naive_strategy_with_convergence_mode(self, graph, rng):
        engine = GraphBoltEngine(
            LabelPropagation(num_labels=3, seed_every=3, tolerance=1e-4),
            until_convergence=True, max_iterations=200, strategy="naive",
        )
        engine.run(graph)
        values = engine.apply_mutations(
            make_random_batch(engine.graph, rng, 10, 10)
        )
        assert values.shape[0] == engine.graph.num_vertices
        assert np.isfinite(values).all()

    def test_refine_strategy_with_convergence_reaches_fixpoint(self, graph,
                                                               rng):
        engine = GraphBoltEngine(
            LabelPropagation(num_labels=3, seed_every=3, tolerance=1e-4),
            until_convergence=True, max_iterations=200,
        )
        engine.run(graph)
        engine.apply_mutations(make_random_batch(engine.graph, rng, 10, 10))
        assert engine._state.frontier.size == 0
