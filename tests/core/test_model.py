"""Unit tests for the IncrementalAlgorithm programming model."""

import numpy as np
import pytest

from repro.algorithms import CoEM, PageRank
from repro.core.aggregation import SumAggregation
from repro.core.model import IncrementalAlgorithm
from repro.graph.csr import CSRGraph
from repro.graph.mutable import StreamingGraph
from repro.graph.mutation import MutationBatch


class Doubler(IncrementalAlgorithm):
    """Minimal concrete algorithm for model-level tests."""

    name = "doubler"
    value_shape = ()

    def __init__(self, tolerance=None):
        super().__init__(SumAggregation(), tolerance)

    def initial_values(self, graph):
        return np.ones(graph.num_vertices)

    def contributions(self, graph, src_values, src, dst, weight):
        return src_values * weight

    def apply(self, graph, aggregate_values, vertices,
              previous_values=None):
        return 2.0 * aggregate_values


class TestToleranceAndChange:
    def test_constructor_tolerance_overrides_class(self):
        assert Doubler().tolerance == 1e-12
        assert Doubler(tolerance=0.5).tolerance == 0.5

    def test_values_changed_scalar(self):
        algo = Doubler(tolerance=0.1)
        old = np.array([1.0, 1.0, 1.0])
        new = np.array([1.05, 1.5, 1.0])
        assert algo.values_changed(old, new).tolist() == [False, True, False]

    def test_values_changed_vector_any_component(self):
        algo = Doubler(tolerance=0.1)
        old = np.zeros((2, 2))
        new = np.array([[0.0, 0.5], [0.01, 0.01]])
        assert algo.values_changed(old, new).tolist() == [True, False]


class TestShapes:
    def test_aggregation_shape_defaults_to_value_shape(self):
        assert Doubler().aggregation_shape == ()

    def test_identity_aggregate(self):
        identity = Doubler().identity_aggregate(4)
        assert identity.shape == (4,)
        assert np.all(identity == 0.0)


class TestExtendValues:
    def test_grows_with_initial_fill(self):
        algo = Doubler()
        small = CSRGraph.from_edges([(0, 1)], num_vertices=2)
        big = CSRGraph.from_edges([(0, 1)], num_vertices=4)
        values = algo.initial_values(small) * 7
        extended = algo.extend_values(values, big)
        assert extended.tolist() == [7.0, 7.0, 1.0, 1.0]

    def test_same_size_is_identity(self):
        algo = Doubler()
        graph = CSRGraph.from_edges([(0, 1)], num_vertices=2)
        values = np.array([3.0, 4.0])
        assert algo.extend_values(values, graph) is values

    def test_cannot_shrink(self):
        algo = Doubler()
        graph = CSRGraph.from_edges([(0, 1)], num_vertices=2)
        with pytest.raises(ValueError):
            algo.extend_values(np.ones(5), graph)


class TestParamChangeHooks:
    def _mutate(self, batch):
        graph = CSRGraph.from_edges([(0, 1), (1, 2), (2, 0)],
                                    num_vertices=3)
        return StreamingGraph(graph).apply_batch(batch)

    def test_defaults_are_empty(self):
        mutation = self._mutate(MutationBatch.from_edges(additions=[(0, 2)]))
        algo = Doubler()
        assert algo.contribution_params_changed(mutation).size == 0
        assert algo.apply_params_changed(mutation).size == 0

    def test_pagerank_reports_out_changed(self):
        mutation = self._mutate(
            MutationBatch.from_edges(additions=[(0, 2)], deletions=[(1, 2)])
        )
        changed = PageRank().contribution_params_changed(mutation)
        assert changed.tolist() == [0, 1]

    def test_coem_reports_in_changed(self):
        mutation = self._mutate(
            MutationBatch.from_edges(additions=[(0, 2)], deletions=[(1, 2)])
        )
        changed = CoEM().apply_params_changed(mutation)
        assert changed.tolist() == [2]

    def test_repr(self):
        assert "sum" in repr(Doubler())


class TestMalformedAlgorithms:
    def test_wrong_contribution_shape_reported_clearly(self):
        from repro.graph.generators import cycle_graph
        from repro.ligra.delta import DeltaEngine

        class Broken(Doubler):
            name = "broken"

            def contributions(self, graph, src_values, src, dst, weight):
                return np.ones((src.size, 3))  # scalar algorithm!

        engine = DeltaEngine(Broken())
        with pytest.raises(ValueError, match="broken.contributions"):
            engine.run(cycle_graph(4), 2)
