"""Unit tests for computation-aware hybrid execution."""

import numpy as np

from repro.algorithms import PageRank
from repro.core.hybrid import hybrid_forward
from repro.graph.generators import rmat
from repro.ligra.delta import DeltaEngine
from repro.ligra.engine import LigraEngine
from repro.runtime.validation import assert_same_results


def make_state_at(graph, algorithm, iterations):
    engine = DeltaEngine(algorithm)
    state = engine.initial_state(graph)
    for _ in range(iterations):
        engine.step(graph, state)
    return engine, state


class TestHybridForward:
    def test_completes_the_window(self):
        graph = rmat(scale=7, edge_factor=5, seed=6, weighted=True)
        engine, state = make_state_at(graph, PageRank(), 3)
        hybrid_forward(engine, graph, state, total_iterations=10,
                       until_convergence=False)
        assert state.iteration == 10
        truth = LigraEngine(PageRank()).run(graph, 10)
        assert_same_results(state.values, truth, tolerance=1e-8)

    def test_no_budget_is_noop(self):
        graph = rmat(scale=6, edge_factor=4, seed=6)
        engine, state = make_state_at(graph, PageRank(), 5)
        before = state.values.copy()
        hybrid_forward(engine, graph, state, total_iterations=5,
                       until_convergence=False)
        assert state.iteration == 5
        assert np.array_equal(state.values, before)

    def test_negative_budget_is_noop(self):
        graph = rmat(scale=6, edge_factor=4, seed=6)
        engine, state = make_state_at(graph, PageRank(), 5)
        hybrid_forward(engine, graph, state, total_iterations=3,
                       until_convergence=False)
        assert state.iteration == 5

    def test_convergence_mode_stops_at_empty_frontier(self):
        from repro.algorithms import SSSP

        graph = rmat(scale=7, edge_factor=5, seed=6, weighted=True)
        engine, state = make_state_at(graph, SSSP(source=0), 2)
        hybrid_forward(engine, graph, state, total_iterations=None,
                       until_convergence=True, max_iterations=500)
        assert state.frontier.size == 0
        assert state.iteration < 100
        truth = LigraEngine(SSSP(source=0)).run(
            graph, until_convergence=True
        )
        filled = np.where(np.isinf(state.values), -1, state.values)
        filled_truth = np.where(np.isinf(truth), -1, truth)
        assert_same_results(filled, filled_truth, tolerance=1e-8)

    def test_default_total_iterations_from_algorithm(self):
        graph = rmat(scale=6, edge_factor=4, seed=6)
        engine, state = make_state_at(graph, PageRank(), 0)
        hybrid_forward(engine, graph, state, total_iterations=None,
                       until_convergence=False)
        assert state.iteration == PageRank().default_iterations

    def test_counts_hybrid_iterations(self):
        graph = rmat(scale=6, edge_factor=4, seed=6)
        engine, state = make_state_at(graph, PageRank(), 4)
        hybrid_forward(engine, graph, state, total_iterations=9,
                       until_convergence=False)
        assert engine.metrics.hybrid_iterations == 5
