"""The central correctness contract (paper Theorem 4.1).

For every algorithm, graph, and mutation batch, dependency-driven
refinement followed by hybrid forward execution must produce the same
values as a from-scratch synchronous run on the mutated graph -- across
additions, deletions, mixed batches, weight replacement, vertex growth,
and multi-batch streams.
"""

import numpy as np
import pytest

from repro.algorithms import (
    BFS,
    BeliefPropagation,
    CoEM,
    CollaborativeFiltering,
    ConnectedComponents,
    LabelPropagation,
    PageRank,
    SSSP,
)
from repro.core.engine import GraphBoltEngine
from repro.core.pruning import PruningPolicy
from repro.graph.generators import bipartite_graph, rmat
from repro.graph.mutation import MutationBatch
from repro.ligra.engine import LigraEngine
from repro.runtime.validation import assert_same_results
from tests.conftest import make_random_batch

CASES = [
    pytest.param(lambda: PageRank(), "rmat", 10, id="pagerank"),
    pytest.param(lambda: LabelPropagation(num_labels=4), "rmat", 10,
                 id="label_propagation"),
    pytest.param(lambda: CoEM(), "rmat", 10, id="coem"),
    pytest.param(lambda: BeliefPropagation(num_states=3), "rmat", 10,
                 id="belief_propagation"),
    pytest.param(lambda: CollaborativeFiltering(num_factors=3), "bipartite",
                 10, id="collaborative_filtering"),
    pytest.param(lambda: SSSP(source=0), "rmat", 40, id="sssp"),
    pytest.param(lambda: BFS(source=0), "rmat", 40, id="bfs"),
    pytest.param(lambda: ConnectedComponents(), "rmat", 40, id="cc"),
]


def build_graph(kind):
    if kind == "bipartite":
        return bipartite_graph(80, 40, 5, seed=7)
    return rmat(scale=8, edge_factor=6, seed=3, weighted=True)


def check(engine, factory, iterations, tolerance=1e-6):
    truth = LigraEngine(factory()).run(engine.graph, iterations)
    actual = engine.values
    filled_truth = np.where(np.isinf(truth), -1.0, truth)
    filled_actual = np.where(np.isinf(actual), -1.0, actual)
    assert_same_results(filled_actual, filled_truth, tolerance=tolerance)


@pytest.mark.parametrize("factory,kind,iterations", CASES)
class TestRefinementEqualsScratch:
    def make_engine(self, factory, iterations, graph, **kwargs):
        engine = GraphBoltEngine(factory(), num_iterations=iterations,
                                 **kwargs)
        engine.run(graph)
        return engine

    def test_additions_only(self, factory, kind, iterations, rng):
        graph = build_graph(kind)
        engine = self.make_engine(factory, iterations, graph)
        batch = make_random_batch(engine.graph, rng, num_adds=25,
                                  num_dels=0)
        engine.apply_mutations(batch)
        check(engine, factory, iterations)

    def test_deletions_only(self, factory, kind, iterations, rng):
        graph = build_graph(kind)
        engine = self.make_engine(factory, iterations, graph)
        batch = make_random_batch(engine.graph, rng, num_adds=0,
                                  num_dels=25)
        engine.apply_mutations(batch)
        check(engine, factory, iterations)

    def test_mixed_stream(self, factory, kind, iterations, rng):
        graph = build_graph(kind)
        engine = self.make_engine(factory, iterations, graph)
        for _ in range(4):
            batch = make_random_batch(engine.graph, rng, num_adds=15,
                                      num_dels=15)
            engine.apply_mutations(batch)
        check(engine, factory, iterations)

    def test_single_edge_mutations(self, factory, kind, iterations, rng):
        graph = build_graph(kind)
        engine = self.make_engine(factory, iterations, graph)
        for _ in range(3):
            batch = make_random_batch(engine.graph, rng, num_adds=1,
                                      num_dels=0)
            engine.apply_mutations(batch)
        check(engine, factory, iterations)

    def test_vertex_growth(self, factory, kind, iterations, rng):
        graph = build_graph(kind)
        engine = self.make_engine(factory, iterations, graph)
        fresh = engine.graph.num_vertices + 2
        batch = MutationBatch.from_edges(
            additions=[(0, fresh - 1), (fresh - 1, 1), (fresh - 2, 0)],
            grow_to=fresh,
        )
        engine.apply_mutations(batch)
        assert engine.graph.num_vertices == fresh
        check(engine, factory, iterations)

    def test_weight_replacement(self, factory, kind, iterations, rng):
        graph = build_graph(kind)
        engine = self.make_engine(factory, iterations, graph)
        src, dst, _ = engine.graph.all_edges()
        edge = (int(src[0]), int(dst[0]))
        batch = MutationBatch.from_edges(
            additions=[edge], deletions=[edge], add_weights=[2.25]
        )
        engine.apply_mutations(batch)
        assert engine.graph.edge_weight(*edge) == 2.25
        check(engine, factory, iterations)

    def test_pruned_horizon_hybrid(self, factory, kind, iterations, rng):
        graph = build_graph(kind)
        engine = self.make_engine(
            factory, iterations, graph,
            pruning=PruningPolicy(horizon=max(iterations // 3, 1)),
        )
        for _ in range(3):
            batch = make_random_batch(engine.graph, rng, num_adds=10,
                                      num_dels=10)
            engine.apply_mutations(batch)
        check(engine, factory, iterations)
        if iterations == 10:
            # Fixed-window algorithms must actually exercise the hybrid
            # forward phase; converging path algorithms may finish
            # within the refined window (an empty frontier), which is
            # the hybrid loop's early exit.
            assert engine.metrics.hybrid_iterations > 0

    def test_empty_batch_is_noop(self, factory, kind, iterations, rng):
        graph = build_graph(kind)
        engine = self.make_engine(factory, iterations, graph)
        before = engine.values.copy()
        engine.apply_mutations(MutationBatch.empty())
        assert np.array_equal(
            np.where(np.isinf(engine.values), -1, engine.values),
            np.where(np.isinf(before), -1, before),
        )

    def test_retract_propagate_mode(self, factory, kind, iterations, rng):
        algorithm = factory()
        if not algorithm.aggregation.decomposable:
            pytest.skip("RP mode applies to decomposable aggregations")
        graph = build_graph(kind)
        engine = GraphBoltEngine(algorithm, num_iterations=iterations,
                                 mode="retract_propagate")
        engine.run(graph)
        batch = make_random_batch(engine.graph, rng, num_adds=15,
                                  num_dels=15)
        engine.apply_mutations(batch)
        check(engine, factory, iterations)

    def test_convergence_mode(self, factory, kind, iterations, rng):
        graph = build_graph(kind)
        engine = GraphBoltEngine(factory(), until_convergence=True,
                                 max_iterations=120)
        engine.run(graph)
        batch = make_random_batch(engine.graph, rng, num_adds=15,
                                  num_dels=15)
        engine.apply_mutations(batch)
        truth = LigraEngine(factory()).run(
            engine.graph, until_convergence=True, max_iterations=120
        )
        filled_truth = np.where(np.isinf(truth), -1.0, truth)
        filled_actual = np.where(np.isinf(engine.values), -1.0,
                                 engine.values)
        assert_same_results(filled_actual, filled_truth, tolerance=1e-5)


class TestRefinementWorkReduction:
    def test_small_batches_touch_few_edges(self, rng):
        graph = rmat(scale=10, edge_factor=8, seed=11, weighted=True)
        algorithm = BeliefPropagation(num_states=2, tolerance=1e-4)
        engine = GraphBoltEngine(algorithm, num_iterations=10)
        engine.run(graph)
        before = engine.metrics.snapshot()
        batch = make_random_batch(engine.graph, rng, num_adds=2, num_dels=2)
        engine.apply_mutations(batch)
        delta = engine.metrics.delta_since(before)
        full_work = graph.num_edges * 10
        assert delta.edge_computations < full_work * 0.5

    def test_dense_fraction_zero_always_rebuilds(self, rng):
        graph = rmat(scale=7, edge_factor=4, seed=2, weighted=True)
        engine = GraphBoltEngine(PageRank(), num_iterations=5,
                                 dense_refine_fraction=0.0)
        engine.run(graph)
        before = engine.metrics.snapshot()
        engine.apply_mutations(
            make_random_batch(engine.graph, rng, num_adds=1, num_dels=0)
        )
        delta = engine.metrics.delta_since(before)
        # Five refinement iterations, each a dense sweep.
        assert delta.edge_computations >= engine.graph.num_edges * 5
        check(engine, lambda: PageRank(), 5)

    def test_dense_fraction_never_matches_sparse_results(self, rng):
        graph = rmat(scale=7, edge_factor=4, seed=2, weighted=True)
        results = []
        for fraction in (0.0, 2.0):
            engine = GraphBoltEngine(LabelPropagation(), num_iterations=8,
                                     dense_refine_fraction=fraction)
            engine.run(graph)
            rng_local = np.random.default_rng(99)
            engine.apply_mutations(
                make_random_batch(engine.graph, rng_local,
                                  num_adds=10, num_dels=10)
            )
            results.append(engine.values)
        assert_same_results(results[0], results[1], tolerance=1e-8)
