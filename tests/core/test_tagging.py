"""Unit tests for the tag-propagation analysis."""

import numpy as np

from repro.core.tagging import downstream_tagged, tagged_fraction
from repro.graph.csr import CSRGraph
from repro.graph.generators import cycle_graph, star_graph
from repro.graph.mutable import StreamingGraph
from repro.graph.mutation import MutationBatch


class TestDownstreamTagged:
    def test_hop_bounded(self):
        graph = cycle_graph(10)
        tagged = downstream_tagged(graph, np.array([0]), max_hops=3)
        assert np.flatnonzero(tagged).tolist() == [0, 1, 2, 3]

    def test_unbounded_closure(self):
        graph = cycle_graph(10)
        tagged = downstream_tagged(graph, np.array([0]), max_hops=None)
        assert tagged.all()

    def test_multiple_seeds(self):
        graph = CSRGraph.from_edges([(0, 1), (2, 3)], num_vertices=5)
        tagged = downstream_tagged(graph, np.array([0, 2]), max_hops=1)
        assert np.flatnonzero(tagged).tolist() == [0, 1, 2, 3]

    def test_no_seeds(self):
        graph = cycle_graph(4)
        tagged = downstream_tagged(graph, np.array([], dtype=np.int64),
                                   max_hops=2)
        assert not tagged.any()

    def test_hub_taints_everything_in_one_hop(self):
        graph = star_graph(20, outward=True)
        tagged = downstream_tagged(graph, np.array([0]), max_hops=1)
        assert tagged.all()


class TestTaggedFraction:
    def test_empty_mutation_is_zero(self):
        graph = cycle_graph(6)
        mutation = StreamingGraph(graph).apply_batch(MutationBatch.empty())
        assert tagged_fraction(mutation, 10) == 0.0

    def test_isolated_mutation_is_local(self):
        graph = CSRGraph.from_edges([(0, 1)], num_vertices=100)
        mutation = StreamingGraph(graph).apply_batch(
            MutationBatch.from_edges(additions=[(2, 3)])
        )
        fraction = tagged_fraction(mutation, 10)
        assert fraction == 2 / 100  # the two endpoints only

    def test_window_bounds_the_taint(self):
        graph = cycle_graph(100)
        mutation = StreamingGraph(graph).apply_batch(
            MutationBatch.from_edges(additions=[(0, 50)])
        )
        short = tagged_fraction(mutation, 2)
        long = tagged_fraction(mutation, 20)
        assert short < long <= 1.0
