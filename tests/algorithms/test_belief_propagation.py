"""Semantic tests for Belief Propagation."""

import numpy as np
import pytest

from repro.algorithms import BeliefPropagation
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat, star_graph
from repro.ligra.engine import LigraEngine


class TestConfiguration:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BeliefPropagation(num_states=1)
        with pytest.raises(ValueError):
            BeliefPropagation(coupling=1.0)

    def test_psi_rows_sum_to_one(self):
        algo = BeliefPropagation(num_states=3, coupling=0.4)
        assert np.allclose(algo.psi.sum(axis=1), 1.0)
        assert np.all(algo.psi > 0)

    def test_priors_near_uniform_and_deterministic(self):
        algo = BeliefPropagation(num_states=2)
        phi = algo.priors(np.arange(100))
        assert np.all((phi >= 0.45) & (phi <= 0.55))
        assert np.array_equal(phi, algo.priors(np.arange(100)))


class TestSemantics:
    def test_values_are_distributions(self):
        graph = rmat(scale=7, edge_factor=5, seed=4, weighted=True)
        values = LigraEngine(BeliefPropagation(num_states=3)).run(graph, 10)
        assert np.allclose(values.sum(axis=1), 1.0)
        assert np.all(values > 0)

    def test_no_in_edges_is_uniform(self):
        graph = star_graph(3, outward=True)
        values = LigraEngine(BeliefPropagation(num_states=2)).run(graph, 5)
        assert np.allclose(values[0], 0.5)

    def test_contributions_unit_geometric_mean(self):
        algo = BeliefPropagation(num_states=3)
        graph = CSRGraph.from_edges([(0, 1)], num_vertices=2)
        logs = algo.contributions(
            graph, np.array([[0.2, 0.3, 0.5]]), np.array([0]),
            np.array([1]), np.array([1.0]),
        )
        assert np.allclose(logs.mean(axis=1), 0.0)

    def test_hub_products_stay_finite(self):
        # A 3000-leaf hub would underflow a direct product; log space
        # must stay finite and normalised.
        graph = star_graph(3000, outward=False)
        values = LigraEngine(BeliefPropagation(num_states=2)).run(graph, 3)
        assert np.all(np.isfinite(values))
        assert np.allclose(values.sum(axis=1), 1.0)

    def test_beliefs_readout(self):
        graph = rmat(scale=6, edge_factor=4, seed=4, weighted=True)
        algo = BeliefPropagation(num_states=2)
        values = LigraEngine(algo).run(graph, 5)
        beliefs = algo.beliefs(values)
        assert beliefs.shape == values.shape
        assert np.allclose(beliefs.sum(axis=1), 1.0)

    def test_coupling_pulls_neighbors_together(self):
        # With a strongly diagonal psi, a vertex fed by a biased source
        # leans toward the source's state.
        algo = BeliefPropagation(num_states=2, coupling=0.8)
        graph = CSRGraph.from_edges([(0, 1)], num_vertices=2)
        biased = np.array([[0.9, 0.1]])
        logs = algo.contributions(graph, biased, np.array([0]),
                                  np.array([1]), np.array([1.0]))
        assert logs[0, 0] > logs[0, 1]
