"""Semantic tests for Label Propagation."""

import numpy as np
import pytest

from repro.algorithms import LabelPropagation
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat
from repro.ligra.engine import LigraEngine


class TestConfiguration:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LabelPropagation(num_labels=1)
        with pytest.raises(ValueError):
            LabelPropagation(seed_every=0)


class TestSeeds:
    def test_seed_selection_deterministic_per_id(self):
        algo = LabelPropagation(num_labels=4, seed_every=5)
        ids = np.arange(1000)
        first = algo.seed_mask(ids)
        assert np.array_equal(first, algo.seed_mask(ids))
        # Roughly 1-in-seed_every of vertices are seeds.
        assert 100 < first.sum() < 320

    def test_seed_labels_stable_under_growth(self):
        algo = LabelPropagation()
        small = algo.seed_labels(np.arange(50))
        large = algo.seed_labels(np.arange(100))
        assert np.array_equal(small, large[:50])

    def test_initial_values(self):
        graph = rmat(scale=6, edge_factor=4, seed=1)
        algo = LabelPropagation(num_labels=4)
        values = algo.initial_values(graph)
        assert values.shape == (graph.num_vertices, 4)
        assert np.allclose(values.sum(axis=1), 1.0)
        ids = np.arange(graph.num_vertices)
        seeds = algo.seed_mask(ids)
        assert np.all(values[seeds].max(axis=1) == 1.0)


class TestSemantics:
    def test_distributions_stay_normalised(self):
        graph = rmat(scale=7, edge_factor=5, seed=2, weighted=True)
        values = LigraEngine(LabelPropagation(num_labels=3)).run(graph, 10)
        totals = values.sum(axis=1)
        assert np.allclose(totals, 1.0)

    def test_seeds_stay_clamped(self):
        graph = rmat(scale=7, edge_factor=5, seed=2, weighted=True)
        algo = LabelPropagation(num_labels=3)
        values = LigraEngine(algo).run(graph, 10)
        ids = np.arange(graph.num_vertices)
        seeds = algo.seed_mask(ids)
        labels = algo.seed_labels(ids[seeds])
        assert np.all(values[seeds][np.arange(seeds.sum()), labels] == 1.0)

    def test_label_flows_along_edges(self):
        algo = LabelPropagation(num_labels=3, seed_every=10**9)
        # No seeds; a two-vertex chain: vertex 1 inherits vertex 0's mix.
        graph = CSRGraph.from_edges([(0, 1)], num_vertices=2)
        aggregate = algo.contributions(
            graph, np.array([[0.2, 0.3, 0.5]]), np.array([0]),
            np.array([1]), np.array([2.0]),
        )
        assert np.allclose(aggregate, [[0.4, 0.6, 1.0]])

    def test_zero_mass_falls_back_to_uniform(self):
        algo = LabelPropagation(num_labels=4, seed_every=10**9)
        graph = CSRGraph.from_edges([], num_vertices=1)
        out = algo.apply(graph, np.zeros((1, 4)), np.array([0]))
        assert np.allclose(out, 0.25)

    def test_tiny_negative_residue_falls_back_to_uniform(self):
        # Float residue from incremental retraction must not be
        # normalised into garbage (regression test).
        algo = LabelPropagation(num_labels=2, seed_every=10**9)
        graph = CSRGraph.from_edges([], num_vertices=1)
        residue = np.array([[-1e-15, 5e-16]])
        out = algo.apply(graph, residue, np.array([0]))
        assert np.allclose(out, 0.5)
