"""Semantic tests for SSSP/BFS/CC, cross-checked against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import BFS, ConnectedComponents, SSSP
from repro.graph.csr import CSRGraph
from repro.graph.generators import cycle_graph, rmat
from repro.ligra.engine import LigraEngine


def to_networkx(graph):
    nx_graph = nx.DiGraph()
    nx_graph.add_nodes_from(range(graph.num_vertices))
    src, dst, weight = graph.all_edges()
    for u, v, w in zip(src.tolist(), dst.tolist(), weight.tolist()):
        nx_graph.add_edge(u, v, weight=w)
    return nx_graph


class TestSSSP:
    def test_invalid_source(self):
        with pytest.raises(ValueError):
            SSSP(source=-1)

    def test_matches_networkx_dijkstra(self):
        graph = rmat(scale=8, edge_factor=5, seed=12, weighted=True)
        ours = LigraEngine(SSSP(source=0)).run(graph,
                                               until_convergence=True)
        theirs = nx.single_source_dijkstra_path_length(
            to_networkx(graph), 0
        )
        for vertex in range(graph.num_vertices):
            if vertex in theirs:
                assert np.isclose(ours[vertex], theirs[vertex]), vertex
            else:
                assert np.isinf(ours[vertex]), vertex

    def test_source_is_zero(self):
        graph = cycle_graph(5)
        distances = LigraEngine(SSSP(source=2)).run(graph,
                                                    until_convergence=True)
        assert distances[2] == 0.0
        assert distances[3] == 1.0
        assert distances[1] == 4.0

    def test_unreachable_is_inf(self):
        graph = CSRGraph.from_edges([(0, 1)], num_vertices=3)
        distances = LigraEngine(SSSP(source=0)).run(graph, 10)
        assert np.isinf(distances[2])

    def test_source_beyond_graph_all_inf(self):
        graph = CSRGraph.from_edges([(0, 1)], num_vertices=2)
        distances = LigraEngine(SSSP(source=5)).run(graph, 5)
        assert np.all(np.isinf(distances))

    def test_values_changed_handles_inf(self):
        algo = SSSP(source=0)
        old = np.array([np.inf, np.inf, 1.0, 2.0])
        new = np.array([np.inf, 3.0, 1.0, 2.5])
        assert algo.values_changed(old, new).tolist() == [
            False, True, False, True,
        ]

    def test_apply_requires_previous(self):
        algo = SSSP(source=0)
        graph = cycle_graph(3)
        with pytest.raises(ValueError):
            algo.apply(graph, np.zeros(1), np.array([1]))


class TestBFS:
    def test_hop_counts(self):
        graph = CSRGraph.from_edges(
            [(0, 1), (1, 2), (2, 3), (0, 3)], num_vertices=4,
            weights=[9.0, 9.0, 9.0, 9.0],  # weights ignored by BFS
        )
        hops = LigraEngine(BFS(source=0)).run(graph,
                                              until_convergence=True)
        assert hops.tolist() == [0.0, 1.0, 2.0, 1.0]

    def test_matches_networkx_bfs(self):
        graph = rmat(scale=7, edge_factor=4, seed=13)
        ours = LigraEngine(BFS(source=0)).run(graph, until_convergence=True)
        theirs = nx.single_source_shortest_path_length(
            to_networkx(graph), 0
        )
        for vertex in range(graph.num_vertices):
            if vertex in theirs:
                assert ours[vertex] == theirs[vertex]
            else:
                assert np.isinf(ours[vertex])


class TestConnectedComponents:
    def test_symmetric_graph_components(self):
        edges = [(0, 1), (1, 0), (1, 2), (2, 1), (3, 4), (4, 3)]
        graph = CSRGraph.from_edges(edges, num_vertices=6)
        labels = LigraEngine(ConnectedComponents()).run(
            graph, until_convergence=True
        )
        assert labels[:3].tolist() == [0.0, 0.0, 0.0]
        assert labels[3:5].tolist() == [3.0, 3.0]
        assert labels[5] == 5.0

    def test_matches_networkx_weak_components(self):
        graph = rmat(scale=7, edge_factor=3, seed=14)
        src, dst, _ = graph.all_edges()
        # Symmetrise so min-label propagation is exact.
        sym = CSRGraph(
            graph.num_vertices,
            np.concatenate([src, dst]),
            np.concatenate([dst, src]),
        )
        ours = LigraEngine(ConnectedComponents()).run(
            sym, until_convergence=True, max_iterations=2000
        )
        for component in nx.weakly_connected_components(to_networkx(graph)):
            members = sorted(component)
            assert np.all(ours[members] == min(members))
