"""Semantic + refinement tests for Adsorption."""

import numpy as np
import pytest

from repro.algorithms import Adsorption
from repro.core.engine import GraphBoltEngine
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat
from repro.ligra.engine import LigraEngine
from tests.conftest import make_random_batch


class TestConfiguration:
    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            Adsorption(injection=0.0)
        with pytest.raises(ValueError):
            Adsorption(injection=0.9, abandonment=0.2)
        with pytest.raises(ValueError):
            Adsorption(num_labels=1)


class TestSemantics:
    def test_values_are_distributions(self):
        graph = rmat(scale=7, edge_factor=5, seed=95, weighted=True)
        values = LigraEngine(Adsorption(num_labels=3)).run(graph, 10)
        assert np.allclose(values.sum(axis=1), 1.0)
        assert values.min() >= 0.0

    def test_abandonment_floors_every_label(self):
        graph = rmat(scale=6, edge_factor=4, seed=96, weighted=True)
        algo = Adsorption(num_labels=4, abandonment=0.2)
        values = LigraEngine(algo).run(graph, 10)
        assert values.min() >= 0.2 / 4 - 1e-12

    def test_seeds_lean_toward_injected_label(self):
        graph = rmat(scale=7, edge_factor=5, seed=97, weighted=True)
        algo = Adsorption(num_labels=3, injection=0.7)
        values = LigraEngine(algo).run(graph, 10)
        ids = np.arange(graph.num_vertices)
        seeds = np.flatnonzero(algo.seed_mask(ids))
        injected = algo.injected_labels(seeds).argmax(axis=1)
        assert (values[seeds].argmax(axis=1) == injected).mean() > 0.9

    def test_soft_seeds_differ_from_clamping(self):
        # Unlike LP, a seed's distribution is a mixture, not one-hot.
        graph = rmat(scale=6, edge_factor=4, seed=98, weighted=True)
        algo = Adsorption(num_labels=3, injection=0.6)
        values = LigraEngine(algo).run(graph, 10)
        seeds = np.flatnonzero(algo.seed_mask(np.arange(graph.num_vertices)))
        assert values[seeds].max() < 1.0

    def test_isolated_vertex_mix(self):
        algo = Adsorption(num_labels=2, injection=0.6, abandonment=0.1,
                          seed_every=10**9)
        graph = CSRGraph.from_edges([], num_vertices=1)
        out = algo.apply(graph, np.zeros((1, 2)), np.array([0]))
        # No seeds, no in-mass: continuation + abandonment of uniform.
        assert np.allclose(out, 0.5)


class TestRefinement:
    def test_refinement_equals_scratch(self, rng):
        graph = rmat(scale=8, edge_factor=6, seed=99, weighted=True)
        engine = GraphBoltEngine(Adsorption(num_labels=3),
                                 num_iterations=10)
        engine.run(graph)
        for _ in range(3):
            engine.apply_mutations(
                make_random_batch(engine.graph, rng, 15, 15)
            )
        truth = LigraEngine(Adsorption(num_labels=3)).run(engine.graph, 10)
        assert np.allclose(engine.values, truth, atol=1e-7)
