"""Tests for single-source widest paths (the MaxAggregation exerciser)."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import SSWP
from repro.core.engine import GraphBoltEngine
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat
from repro.graph.mutation import MutationBatch
from repro.ligra.delta import DeltaEngine
from repro.ligra.engine import LigraEngine
from tests.conftest import make_random_batch


def widest_paths_reference(graph, source):
    """Reference widest paths via networkx's maximum spanning logic:
    run a modified Dijkstra maximising the bottleneck."""
    import heapq

    width = np.full(graph.num_vertices, -np.inf)
    width[source] = np.inf
    heap = [(-np.inf, source)]  # max-heap on width via negation
    visited = set()
    while heap:
        neg_w, u = heapq.heappop(heap)
        if u in visited:
            continue
        visited.add(u)
        for v, w in zip(graph.out_neighbors(u).tolist(),
                        graph.out_neighbor_weights(u).tolist()):
            candidate = min(width[u], w)
            if candidate > width[v]:
                width[v] = candidate
                heapq.heappush(heap, (-candidate, v))
    return width


class TestSemantics:
    def test_invalid_source(self):
        with pytest.raises(ValueError):
            SSWP(source=-2)

    def test_simple_bottleneck(self):
        graph = CSRGraph.from_edges(
            [(0, 1), (1, 2), (0, 2)], num_vertices=3,
            weights=[5.0, 2.0, 1.0],
        )
        widths = LigraEngine(SSWP(source=0)).run(graph,
                                                 until_convergence=True)
        assert widths[0] == np.inf
        assert widths[1] == 5.0
        assert widths[2] == 2.0  # via 0->1->2 beats direct 0->2

    def test_unreachable_is_minus_inf(self):
        graph = CSRGraph.from_edges([(0, 1)], num_vertices=3)
        widths = LigraEngine(SSWP(source=0)).run(graph, 10)
        assert widths[2] == -np.inf

    def test_matches_dijkstra_reference(self):
        graph = rmat(scale=7, edge_factor=5, seed=80, weighted=True)
        ours = LigraEngine(SSWP(source=0)).run(graph,
                                               until_convergence=True)
        reference = widest_paths_reference(graph, 0)
        both_inf = np.isinf(ours) & np.isinf(reference)
        assert np.allclose(ours[~both_inf], reference[~both_inf])
        assert np.array_equal(ours == -np.inf, reference == -np.inf)

    def test_delta_engine_agrees(self):
        graph = rmat(scale=7, edge_factor=5, seed=81, weighted=True)
        full = LigraEngine(SSWP(source=0)).run(graph,
                                               until_convergence=True)
        delta = DeltaEngine(SSWP(source=0)).run(graph,
                                                until_convergence=True)
        both_inf = np.isinf(full) & np.isinf(delta)
        assert np.allclose(full[~both_inf], delta[~both_inf])


class TestRefinement:
    def test_mixed_stream_stays_exact(self, rng):
        graph = rmat(scale=7, edge_factor=5, seed=82, weighted=True)
        engine = GraphBoltEngine(SSWP(source=0), until_convergence=True)
        engine.run(graph)
        for _ in range(5):
            engine.apply_mutations(
                make_random_batch(engine.graph, rng, 12, 12)
            )
            truth = LigraEngine(SSWP(source=0)).run(
                engine.graph, until_convergence=True
            )
            both_inf = np.isinf(engine.values) & np.isinf(truth)
            assert np.allclose(engine.values[~both_inf], truth[~both_inf])

    def test_bottleneck_deletion_forces_reevaluation(self):
        graph = CSRGraph.from_edges(
            [(0, 1), (1, 2), (0, 2)], num_vertices=3,
            weights=[5.0, 2.0, 1.0],
        )
        engine = GraphBoltEngine(SSWP(source=0), until_convergence=True)
        engine.run(graph)
        assert engine.values[2] == 2.0
        engine.apply_mutations(MutationBatch.from_edges(deletions=[(1, 2)]))
        # The best path's bottleneck edge is gone; the direct edge wins.
        assert engine.values[2] == 1.0
