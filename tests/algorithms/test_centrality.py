"""Semantic + refinement tests for the extension centrality algorithms."""

import numpy as np
import pytest

from repro.algorithms import (
    KatzCentrality,
    PersonalizedPageRank,
    WeightedPageRank,
)
from repro.core.engine import GraphBoltEngine
from repro.graph.csr import CSRGraph
from repro.graph.generators import cycle_graph, rmat, star_graph
from repro.graph.mutation import MutationBatch
from repro.ligra.engine import LigraEngine
from tests.conftest import make_random_batch

FACTORIES = [
    pytest.param(lambda: KatzCentrality(alpha=0.05), id="katz"),
    pytest.param(lambda: WeightedPageRank(), id="weighted_pagerank"),
    pytest.param(lambda: PersonalizedPageRank(), id="personalized_pagerank"),
]


class TestKatz:
    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            KatzCentrality(alpha=0.0)

    def test_isolated_vertex_scores_beta(self):
        graph = CSRGraph.from_edges([(0, 1)], num_vertices=3)
        scores = LigraEngine(KatzCentrality(beta=2.0)).run(graph, 10)
        assert scores[2] == 2.0

    def test_more_in_edges_more_central(self):
        graph = star_graph(10, outward=False)  # leaves -> hub
        scores = LigraEngine(KatzCentrality()).run(graph, 10)
        assert scores[0] > scores[1]


class TestWeightedPageRank:
    def test_invalid_damping(self):
        with pytest.raises(ValueError):
            WeightedPageRank(damping=1.0)

    def test_weight_shares_sum_to_rank(self):
        graph = CSRGraph.from_edges([(0, 1), (0, 2)], num_vertices=3,
                                    weights=[3.0, 1.0])
        algo = WeightedPageRank()
        contribs = algo.contributions(
            graph, np.array([2.0, 2.0]), np.array([0, 0]),
            np.array([1, 2]), np.array([3.0, 1.0]),
        )
        assert np.allclose(contribs, [1.5, 0.5])

    def test_uniform_weights_match_plain_pagerank(self):
        from repro.algorithms import PageRank

        graph = rmat(scale=7, edge_factor=5, seed=60)  # unit weights
        weighted = LigraEngine(WeightedPageRank()).run(graph, 10)
        plain = LigraEngine(PageRank()).run(graph, 10)
        assert np.allclose(weighted, plain)

    def test_weight_replacement_is_param_change(self):
        from repro.graph.mutable import StreamingGraph

        graph = CSRGraph.from_edges([(0, 1), (0, 2)], num_vertices=3)
        mutation = StreamingGraph(graph).apply_batch(
            MutationBatch.from_edges(additions=[(0, 1)],
                                     deletions=[(0, 1)],
                                     add_weights=[5.0])
        )
        changed = WeightedPageRank().contribution_params_changed(mutation)
        assert 0 in changed.tolist()


class TestPersonalized:
    def test_mass_concentrates_near_seeds(self):
        graph = cycle_graph(40)
        algo = PersonalizedPageRank(seed_every=40, salt=41)
        scores = LigraEngine(algo).run(graph, 60)
        seeds = np.flatnonzero(algo.seed_mask(np.arange(40)))
        if seeds.size:
            seed = int(seeds[0])
            successor = (seed + 1) % 40
            far = (seed + 20) % 40
            assert scores[seed] > scores[far]
            assert scores[successor] > scores[far]

    def test_non_seed_graphless_vertex_scores_zero(self):
        graph = CSRGraph.from_edges([], num_vertices=64)
        algo = PersonalizedPageRank(seed_every=8)
        scores = LigraEngine(algo).run(graph, 5)
        seeds = algo.seed_mask(np.arange(64))
        assert np.all(scores[~seeds] == 0.0)
        assert np.all(scores[seeds] > 0.0)


@pytest.mark.parametrize("factory", FACTORIES)
class TestRefinementEqualsScratch:
    def test_mixed_stream(self, factory, rng):
        graph = rmat(scale=8, edge_factor=6, seed=61, weighted=True)
        engine = GraphBoltEngine(factory(), num_iterations=10)
        engine.run(graph)
        for _ in range(3):
            batch = make_random_batch(engine.graph, rng, 15, 15)
            engine.apply_mutations(batch)
        truth = LigraEngine(factory()).run(engine.graph, 10)
        assert np.allclose(engine.values, truth, atol=1e-7)

    def test_weight_replacement_refines_exactly(self, factory, rng):
        graph = rmat(scale=7, edge_factor=5, seed=62, weighted=True)
        engine = GraphBoltEngine(factory(), num_iterations=10)
        engine.run(graph)
        src, dst, _ = engine.graph.all_edges()
        edge = (int(src[3]), int(dst[3]))
        engine.apply_mutations(
            MutationBatch.from_edges(additions=[edge], deletions=[edge],
                                     add_weights=[4.5])
        )
        truth = LigraEngine(factory()).run(engine.graph, 10)
        assert np.allclose(engine.values, truth, atol=1e-7)
