"""Semantic tests for PageRank, including a networkx cross-check."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import PageRank
from repro.graph.generators import cycle_graph, rmat, star_graph
from repro.ligra.engine import LigraEngine


class TestBasics:
    def test_invalid_damping(self):
        with pytest.raises(ValueError):
            PageRank(damping=1.5)
        with pytest.raises(ValueError):
            PageRank(damping=0.0)

    def test_initial_values_are_ones(self):
        graph = cycle_graph(4)
        assert np.all(PageRank().initial_values(graph) == 1.0)

    def test_no_in_edges_gets_base_rank(self):
        graph = star_graph(4, outward=True)
        ranks = LigraEngine(PageRank()).run(graph, 10)
        # The hub has no in-edges, so its steady rank is the base 0.15,
        # and each leaf receives a quarter of it through damping.
        assert np.isclose(ranks[0], 0.15)
        assert np.allclose(ranks[1:], 0.15 + 0.85 * (0.15 / 4))

    def test_cycle_is_uniform_fixpoint(self):
        graph = cycle_graph(6)
        ranks = LigraEngine(PageRank()).run(graph, 50)
        assert np.allclose(ranks, 1.0)

    def test_contribution_splits_by_degree(self):
        graph = star_graph(4, outward=True)
        algo = PageRank()
        contribs = algo.contributions(
            graph, np.array([2.0]), np.array([0]), np.array([1]),
            np.array([1.0]),
        )
        assert contribs[0] == 0.5  # 2.0 / out_degree 4


class TestAgainstNetworkx:
    def test_matches_networkx_power_iteration(self):
        graph = rmat(scale=7, edge_factor=5, seed=8)
        src, dst, _ = graph.all_edges()
        nx_graph = nx.DiGraph()
        nx_graph.add_nodes_from(range(graph.num_vertices))
        nx_graph.add_edges_from(zip(src.tolist(), dst.tolist()))

        iterations = 60
        ours = LigraEngine(PageRank()).run(graph, iterations)

        # networkx normalises ranks to sum 1 and spreads dangling mass;
        # replicate our formulation (per-vertex base, dangling dropped)
        # by running its generic power iteration with personalization off
        # and comparing *relative* orderings of the top vertices instead.
        theirs = nx.pagerank(nx_graph, alpha=0.85, max_iter=200, tol=1e-12)
        theirs_arr = np.array([theirs[v] for v in range(graph.num_vertices)])

        top_ours = np.argsort(ours)[-20:]
        top_theirs = np.argsort(theirs_arr)[-20:]
        overlap = len(set(top_ours.tolist()) & set(top_theirs.tolist()))
        assert overlap >= 15
