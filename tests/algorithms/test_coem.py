"""Semantic tests for CoEM."""

import numpy as np

from repro.algorithms import CoEM
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat
from repro.ligra.engine import LigraEngine


class TestSeeds:
    def test_seed_scores_binary(self):
        algo = CoEM()
        scores = algo.seed_scores(np.arange(100))
        assert set(np.unique(scores).tolist()) <= {0.0, 1.0}

    def test_initial_values(self):
        graph = rmat(scale=6, edge_factor=4, seed=1)
        algo = CoEM(default_score=0.3)
        values = algo.initial_values(graph)
        ids = np.arange(graph.num_vertices)
        seeds = algo.seed_mask(ids)
        assert np.all(
            (values[~seeds] == 0.3)
        )
        assert set(np.unique(values[seeds]).tolist()) <= {0.0, 1.0}


class TestSemantics:
    def test_scores_stay_in_unit_interval(self):
        graph = rmat(scale=7, edge_factor=5, seed=3, weighted=True)
        values = LigraEngine(CoEM()).run(graph, 10)
        assert values.min() >= 0.0
        assert values.max() <= 1.0

    def test_weighted_average_of_neighbors(self):
        # Vertex 2 has in-edges from 0 (score a, weight 2) and 1
        # (score b, weight 1): its value is (2a + b) / 3.
        graph = CSRGraph.from_edges([(0, 2), (1, 2)], num_vertices=3,
                                    weights=[2.0, 1.0])
        algo = CoEM(seed_every=10**9)
        values = np.array([0.9, 0.3, 0.0])
        contribs = algo.contributions(
            graph, values[[0, 1]], np.array([0, 1]), np.array([2, 2]),
            np.array([2.0, 1.0]),
        )
        aggregate = np.zeros(3)
        np.add.at(aggregate, [2, 2], contribs)
        out = algo.apply(graph, aggregate[[2]], np.array([2]))
        assert np.isclose(out[0], (2 * 0.9 + 0.3) / 3)

    def test_no_in_edges_keeps_default(self):
        graph = CSRGraph.from_edges([(0, 1)], num_vertices=2)
        algo = CoEM(seed_every=10**9, default_score=0.2)
        out = algo.apply(graph, np.zeros(1), np.array([0]))
        assert out[0] == 0.2

    def test_seeds_clamped_in_apply(self):
        graph = rmat(scale=6, edge_factor=4, seed=3, weighted=True)
        algo = CoEM()
        values = LigraEngine(algo).run(graph, 5)
        ids = np.arange(graph.num_vertices)
        seeds = algo.seed_mask(ids)
        assert np.array_equal(values[seeds], algo.seed_scores(ids[seeds]))

    def test_in_weight_change_is_apply_param(self):
        from repro.graph.mutable import StreamingGraph
        from repro.graph.mutation import MutationBatch

        graph = CSRGraph.from_edges([(0, 1), (1, 2)], num_vertices=3)
        mutation = StreamingGraph(graph).apply_batch(
            MutationBatch.from_edges(additions=[(0, 2)])
        )
        assert CoEM().apply_params_changed(mutation).tolist() == [2]
