"""Semantic tests for Collaborative Filtering (ALS)."""

import numpy as np
import pytest

from repro.algorithms import CollaborativeFiltering
from repro.graph.csr import CSRGraph
from repro.graph.generators import bipartite_graph
from repro.ligra.engine import LigraEngine


class TestConfiguration:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CollaborativeFiltering(num_factors=0)
        with pytest.raises(ValueError):
            CollaborativeFiltering(regulariser=0.0)

    def test_aggregation_shape_is_pair(self):
        algo = CollaborativeFiltering(num_factors=4)
        assert algo.aggregation_shape == (4 * 5,)

    def test_initial_values_deterministic_and_bounded(self):
        graph = bipartite_graph(10, 5, 3, seed=1)
        algo = CollaborativeFiltering(num_factors=3)
        values = algo.initial_values(graph)
        assert values.shape == (15, 3)
        assert np.all((values >= 0.1) & (values <= 0.9))
        assert np.array_equal(values, algo.initial_values(graph))


class TestDecomposition:
    def test_contribution_layout(self):
        algo = CollaborativeFiltering(num_factors=2)
        graph = CSRGraph.from_edges([(0, 1)], num_vertices=2)
        vec = np.array([[1.0, 2.0]])
        contrib = algo.contributions(graph, vec, np.array([0]),
                                     np.array([1]), np.array([3.0]))
        # <flattened outer product | weighted vector>
        assert contrib[0].tolist() == [1.0, 2.0, 2.0, 4.0, 3.0, 6.0]

    def test_apply_solves_regularised_normal_equations(self):
        algo = CollaborativeFiltering(num_factors=2, regulariser=0.5)
        graph = CSRGraph.from_edges([(0, 1)], num_vertices=2)
        vec = np.array([1.0, 2.0])
        weight = 3.0
        aggregate = np.concatenate(
            [np.outer(vec, vec).reshape(-1), vec * weight]
        )[None, :]
        out = algo.apply(graph, aggregate, np.array([1]))
        expected = np.linalg.solve(
            np.outer(vec, vec) + 0.5 * np.eye(2), vec * weight
        )
        assert np.allclose(out[0], expected)

    def test_no_ratings_gives_zero_vector(self):
        algo = CollaborativeFiltering(num_factors=3, regulariser=1.0)
        graph = CSRGraph.from_edges([], num_vertices=1)
        out = algo.apply(graph, np.zeros((1, 12)), np.array([0]))
        assert np.allclose(out, 0.0)


class TestTraining:
    def test_reduces_rating_reconstruction_error(self):
        graph = bipartite_graph(60, 30, 6, seed=9)
        algo = CollaborativeFiltering(num_factors=4, regulariser=0.3)

        def reconstruction_error(values):
            src, dst, weight = graph.all_edges()
            predicted = np.einsum("ek,ek->e", values[src], values[dst])
            return float(np.mean((predicted - weight) ** 2))

        # Synchronous (Jacobi) ALS updates both sides simultaneously, so
        # convergence is slow and oscillatory -- the BSP formulation the
        # paper benchmarks is a workload, not a tuned recommender.  The
        # error must still improve on the random initialisation.
        initial_error = reconstruction_error(algo.initial_values(graph))
        trained = LigraEngine(algo).run(graph, 20)
        trained_error = reconstruction_error(trained)
        assert trained_error < initial_error

    def test_values_stay_finite(self):
        graph = bipartite_graph(40, 20, 4, seed=10)
        values = LigraEngine(CollaborativeFiltering(num_factors=3)).run(
            graph, 10
        )
        assert np.all(np.isfinite(values))
