"""Tests for triangle counting: baseline, incremental, and properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.triangle_counting import (
    IncrementalTriangleCounting,
    _canonical,
    triangle_counts,
)
from repro.graph.csr import CSRGraph
from repro.graph.generators import complete_graph, cycle_graph, rmat
from repro.graph.mutation import MutationBatch
from repro.runtime.metrics import EngineMetrics
from tests.conftest import make_random_batch


def brute_force(graph):
    """Reference: enumerate all directed 3-cycles."""
    edges = graph.edge_set()
    count = 0
    per_vertex = np.zeros(graph.num_vertices, dtype=np.int64)
    vertices = range(graph.num_vertices)
    for u in vertices:
        for v in graph.out_neighbors(u).tolist():
            for w in graph.out_neighbors(v).tolist():
                if (w, u) in edges and u < v and u < w:
                    count += 1
                    per_vertex[[u, v, w]] += 1
    return per_vertex, count


class TestCanonical:
    def test_rotations_equal(self):
        assert _canonical(1, 2, 3) == _canonical(2, 3, 1) == _canonical(3, 1, 2)

    def test_distinct_triangles_differ(self):
        assert _canonical(1, 2, 3) != _canonical(1, 3, 2)


class TestFullCount:
    def test_directed_triangle(self):
        graph = cycle_graph(3)
        result = triangle_counts(graph)
        assert result.total == 1
        assert result.per_vertex.tolist() == [1, 1, 1]

    def test_undirected_pair_is_two_cycles(self):
        edges = [(0, 1), (1, 2), (2, 0), (1, 0), (2, 1), (0, 2)]
        graph = CSRGraph.from_edges(edges, num_vertices=3)
        assert triangle_counts(graph).total == 2

    def test_no_triangles_in_a_cycle4(self):
        assert triangle_counts(cycle_graph(4)).total == 0

    def test_complete_graph(self):
        # K4 directed both ways: each vertex triple forms 2 directed
        # 3-cycles, and C(4,3) = 4 triples.
        assert triangle_counts(complete_graph(4)).total == 8

    def test_matches_brute_force(self):
        graph = rmat(scale=6, edge_factor=5, seed=15)
        per_vertex, total = brute_force(graph)
        result = triangle_counts(graph)
        assert result.total == total
        assert np.array_equal(result.per_vertex, per_vertex)

    def test_counts_edge_work(self):
        metrics = EngineMetrics()
        triangle_counts(cycle_graph(3), metrics)
        assert metrics.edge_computations > 0


class TestIncremental:
    def test_addition_creates_triangle(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2)], num_vertices=3)
        counter = IncrementalTriangleCounting(graph)
        assert counter.total == 0
        counter.apply_mutations(MutationBatch.from_edges(additions=[(2, 0)]))
        assert counter.total == 1
        assert counter.per_vertex.tolist() == [1, 1, 1]

    def test_deletion_destroys_triangle(self):
        counter = IncrementalTriangleCounting(cycle_graph(3))
        counter.apply_mutations(MutationBatch.from_edges(deletions=[(0, 1)]))
        assert counter.total == 0
        assert counter.per_vertex.tolist() == [0, 0, 0]

    def test_multi_mutated_triangle_not_double_counted(self):
        graph = CSRGraph.from_edges([(0, 1)], num_vertices=3)
        counter = IncrementalTriangleCounting(graph)
        counter.apply_mutations(
            MutationBatch.from_edges(additions=[(1, 2), (2, 0)])
        )
        assert counter.total == 1

    def test_vertex_growth(self):
        counter = IncrementalTriangleCounting(cycle_graph(3))
        counter.apply_mutations(
            MutationBatch.from_edges(additions=[(2, 3), (3, 0)])
        )
        assert counter.per_vertex.size == 4
        assert counter.total == 1  # original triangle intact

    def test_stream_matches_recompute(self, rng):
        graph = rmat(scale=7, edge_factor=6, seed=16)
        counter = IncrementalTriangleCounting(graph)
        for _ in range(6):
            counter.apply_mutations(
                make_random_batch(counter.graph, rng, 20, 20,
                                  weighted=False)
            )
        expected = triangle_counts(counter.graph)
        assert counter.total == expected.total
        assert np.array_equal(counter.per_vertex, expected.per_vertex)

    def test_incremental_work_is_local(self, rng):
        graph = rmat(scale=9, edge_factor=8, seed=17)
        counter = IncrementalTriangleCounting(graph)
        recount_metrics = EngineMetrics()
        triangle_counts(graph, recount_metrics)
        before = counter.metrics.snapshot()
        counter.apply_mutations(
            make_random_batch(counter.graph, rng, 5, 5, weighted=False)
        )
        delta = counter.metrics.delta_since(before)
        assert delta.edge_computations < (
            recount_metrics.edge_computations * 0.05
        )

    def test_dependency_bytes_reports_retained_structure(self):
        counter = IncrementalTriangleCounting(cycle_graph(3))
        assert counter.dependency_bytes() == counter.per_vertex.nbytes
        counter.apply_mutations(MutationBatch.from_edges(additions=[(0, 2)]))
        assert counter.dependency_bytes() > counter.per_vertex.nbytes


@st.composite
def evolving_graph(draw):
    num_vertices = draw(st.integers(3, 10))
    def edge():
        return st.tuples(
            st.integers(0, num_vertices - 1),
            st.integers(0, num_vertices - 1),
        ).filter(lambda e: e[0] != e[1])
    edges = draw(st.lists(edge(), max_size=25))
    batches = draw(
        st.lists(
            st.tuples(st.lists(edge(), max_size=6),
                      st.lists(edge(), max_size=6)),
            max_size=3,
        )
    )
    return num_vertices, edges, batches


class TestIncrementalProperty:
    @given(evolving_graph())
    @settings(max_examples=50, deadline=None)
    def test_always_matches_recompute(self, data):
        num_vertices, edges, batches = data
        graph = CSRGraph.from_edges(set(edges), num_vertices=num_vertices)
        counter = IncrementalTriangleCounting(graph)
        for additions, deletions in batches:
            counter.apply_mutations(
                MutationBatch.from_edges(additions=additions,
                                         deletions=deletions)
            )
            expected = triangle_counts(counter.graph)
            assert counter.total == expected.total
            assert np.array_equal(counter.per_vertex, expected.per_vertex)
